#include "os/kernel.hh"

#include "os/dsm.hh"
#include "os/map_manager.hh"
#include "os/nx_service.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

const char *
procStateName(ProcState s)
{
    switch (s) {
      case ProcState::READY: return "ready";
      case ProcState::RUNNING: return "running";
      case ProcState::BLOCKED: return "blocked";
      case ProcState::EXITED: return "exited";
    }
    return "unknown";
}

Kernel::Kernel(EventQueue &eq, std::string name, NodeId node,
               unsigned num_nodes, Cpu &cpu, MainMemory &mem,
               XpressBus &bus, ShrimpNi &ni, const Costs &costs)
    : SimObject(eq, std::move(name)),
      _node(node),
      _numNodes(num_nodes),
      _cpu(cpu),
      _mem(mem),
      _bus(bus),
      _ni(ni),
      _costs(costs),
      _frames(1, mem.numPages()),   // frame 0 reserved (null page)
      _quantumEvent([this] { quantumExpired(); }, "quantum"),
      _stats(this->name())
{
    _stats.addStat(&_switches);
    _stats.addStat(&_interruptCount);
    _stats.addStat(&_fifoStalls);
    _stats.addStat(&_fifoStallTicks);
    _stats.addStat(&_pageEvictions);
    _stats.addStat(&_pageIns);
    _stats.addStat(&_mappingErrors);
    _stats.addStat(&_crashes);
    _stats.addStat(&_restarts);
    _stats.addStat(&_sendsRejected);

    _cpu.setTrapHandler(this);
    _ni.onArrival = [this](PageNum page, Addr) {
        _cpu.postInterrupt(
            [this, page](Tick now) { return arrivalHandler(page, now); });
    };
    _ni.onOutFifoAboveThreshold = [this] { outFifoFull(); };
    _ni.onOutFifoDrained = [this] { outFifoDrained(); };
    _ni.onMappingError = [this](NodeId dst, unsigned halves) {
        // The NI's reliability layer gave up on dst: record it so
        // user-visible state (mappingErrors / peerFailed) reflects the
        // degradation instead of data silently vanishing.
        _mappingErrors += halves;
        _failedPeers.insert(dst);
        SHRIMP_WARN(this->name(), ": peer ", dst, " unreachable, ",
                    halves, " mapping halves errored");
        // Retry-cap exhaustion is hard failure evidence: feed it to
        // the detector so full teardown runs via the peerDead hook.
        if (_health)
            _health->reportPeerFailure(dst);
    };

    _mapManager = std::make_unique<MapManager>(*this);
    _nxService = std::make_unique<NxService>(*this);
}

Kernel::~Kernel()
{
    // Release mapping pins before process address spaces return their
    // frames to the allocator.
    _mapManager->releaseAllPins();
}

// ---------------------------------------------------------------------
// Processes and scheduling
// ---------------------------------------------------------------------

Process *
Kernel::createProcess(const std::string &name)
{
    auto proc = std::make_unique<Process>(_nextPid++, name, _frames);
    proc->state = ProcState::BLOCKED;   // until a program is loaded
    Process *raw = proc.get();
    _processes.push_back(std::move(proc));
    return raw;
}

Process *
Kernel::findProcess(Pid pid)
{
    for (auto &proc : _processes) {
        if (proc->pid() == pid)
            return proc.get();
    }
    return nullptr;
}

void
Kernel::loadAndReady(Process &proc,
                     std::shared_ptr<const Program> program,
                     std::size_t stack_pages)
{
    SHRIMP_ASSERT(program->finalized(), "program not finalized");
    Addr stack_base = proc.allocate(stack_pages);
    proc.load(std::move(program),
              stack_base + stack_pages * PAGE_SIZE);
    proc.state = ProcState::READY;
    _readyQueue.push_back(&proc);
}

void
Kernel::start()
{
    if (_running)
        return;
    auto t = scheduleNext(curTick());
    if (t)
        _cpu.resumeAt(*t);
}

bool
Kernel::allProcessesExited() const
{
    for (const auto &proc : _processes) {
        if (proc->state != ProcState::EXITED)
            return false;
    }
    return true;
}

std::optional<Tick>
Kernel::scheduleNext(Tick now)
{
    for (auto it = _readyQueue.begin(); it != _readyQueue.end();) {
        Process *next = *it;
        if (next->state != ProcState::READY) {
            it = _readyQueue.erase(it);
            continue;
        }
        if (_schedPolicy == SchedPolicy::GANG &&
            next->gangId != _currentGang) {
            ++it;   // stays queued until its gang's epoch
            continue;
        }
        _readyQueue.erase(it);
        next->state = ProcState::RUNNING;
        _running = next;
        _cpu.setContext(&next->ctx);
        ++_switches;
        armQuantum(*next);
        return now + charge(&next->ctx, _costs.contextSwitch);
    }
    _running = nullptr;
    _cpu.setContext(nullptr);
    return std::nullopt;
}

void
Kernel::setCurrentGang(std::uint32_t gang)
{
    if (_currentGang == gang)
        return;
    _currentGang = gang;

    if (_running && _running->gangId != gang) {
        // Preempt at the next instruction boundary.
        _cpu.postInterrupt([this](Tick now) {
            if (!_running || _running->gangId == _currentGang)
                return now;
            Process *prev = _running;
            prev->state = ProcState::READY;
            _readyQueue.push_back(prev);
            _running = nullptr;
            auto t = scheduleNext(now);
            return t ? *t : now;
        });
    } else if (!_running && !_stalledOnOutFifo) {
        auto t = scheduleNext(curTick());
        if (t)
            _cpu.resumeAt(*t);
    }
}

void
Kernel::blockCurrent(ExecContext &ctx)
{
    Process &proc = processOf(ctx);
    SHRIMP_ASSERT(_running == &proc, "blockCurrent on a non-running "
                  "process '", proc.name(), "'");
    proc.state = ProcState::BLOCKED;
    _running = nullptr;
}

void
Kernel::makeReady(Process &proc)
{
    if (proc.state == ProcState::EXITED)
        return;
    if (proc.state == ProcState::READY ||
        proc.state == ProcState::RUNNING) {
        return;
    }
    proc.state = ProcState::READY;
    _readyQueue.push_back(&proc);
    // No dispatch while crashed: a deferred completion (e.g. a DSM
    // fault resolving during the outage) must not restart the CPU.
    if (!_running && !_stalledOnOutFifo && !_crashed) {
        auto t = scheduleNext(curTick());
        if (t)
            _cpu.resumeAt(*t);
    }
}

Process &
Kernel::processOf(ExecContext &ctx)
{
    Process *proc = findProcess(ctx.pid);
    SHRIMP_ASSERT(proc, "no process for pid ", ctx.pid);
    return *proc;
}

Tick
Kernel::charge(ExecContext *ctx, std::uint64_t instructions)
{
    return _cpu.chargeKernel(ctx, instructions);
}

void
Kernel::reapProcess(Process &proc)
{
    // Exited processes keep their memory and mappings (a receiver may
    // halt while data is still in flight to it); reaping is the
    // explicit teardown. Outgoing mappings die immediately; frames
    // that remote senders still target get the Section 4.4 shootdown
    // so those senders fault, and their remap attempts are refused
    // because the process is reaped.
    proc.state = ProcState::EXITED;
    proc.ctx.halted = true;
    proc.reaped = true;

    std::vector<PageNum> victims =
        _mapManager->cleanupProcess(proc.pid());
    for (PageNum frame : victims) {
        _mapManager->shootdown(frame, [this, frame] {
            _mapManager->releaseInMappings(frame);
        });
    }
}

void
Kernel::armQuantum(Process &proc)
{
    _quantumTarget = &proc;
    reschedule(_quantumEvent, curTick() + _costs.quantum);
}

void
Kernel::quantumExpired()
{
    if (!_running || _running != _quantumTarget)
        return;
    if (_readyQueue.empty()) {
        armQuantum(*_running);      // nothing to switch to
        return;
    }
    _cpu.postInterrupt([this](Tick now) {
        if (!_running || _readyQueue.empty())
            return now;
        Process *prev = _running;
        prev->state = ProcState::READY;
        _readyQueue.push_back(prev);
        _running = nullptr;
        auto t = scheduleNext(now);
        return t ? *t : now;
    });
}

// ---------------------------------------------------------------------
// Interrupts and flow control
// ---------------------------------------------------------------------

Tick
Kernel::arrivalHandler(PageNum page, Tick now)
{
    ++_interruptCount;
    std::uint64_t work = _costs.arrivalInterrupt;

    auto chan = _channelPeerOfFrame.find(page);
    if (chan != _channelPeerOfFrame.end()) {
        work += _mapManager->handleChannelArrival(chan->second);
    } else if (_nxService->ownsFrame(page)) {
        work += _nxService->handleArrival(INVALID_NODE, page);
    } else {
        // User page: count the arrival and wake WAIT_ARRIVAL waiters.
        std::uint64_t count = ++_arrivalCount[page];
        auto it = _arrivalWaiters.find(page);
        if (it != _arrivalWaiters.end()) {
            for (Process *proc : it->second) {
                proc->ctx.regs[R0] = count;
                proc->waitFrame = INVALID_PAGE;
                makeReady(*proc);
            }
            it->second.clear();
        }
    }
    return now + charge(nullptr, work);
}

std::uint64_t
Kernel::arrivalCount(PageNum frame) const
{
    auto it = _arrivalCount.find(frame);
    return it == _arrivalCount.end() ? 0 : it->second;
}

void
Kernel::outFifoFull()
{
    // Section 4: "If the Outgoing FIFO becomes full ... the CPU is
    // interrupted and waits until the FIFO drains."
    if (_stalledOnOutFifo)
        return;
    _stalledOnOutFifo = true;
    _stallStart = curTick();
    ++_fifoStalls;
    _cpu.suspend();
}

void
Kernel::outFifoDrained()
{
    if (!_stalledOnOutFifo)
        return;
    _stalledOnOutFifo = false;
    _fifoStallTicks += curTick() - _stallStart;
    if (_cpu.context() && !_cpu.context()->halted) {
        _cpu.resumeAt(curTick());
    } else if (!_running) {
        auto t = scheduleNext(curTick());
        if (t)
            _cpu.resumeAt(*t);
    }
}

// ---------------------------------------------------------------------
// Kernel channel plumbing
// ---------------------------------------------------------------------

void
Kernel::allocateChannels()
{
    _channelIn.assign(_numNodes, INVALID_PAGE);
    _channelOut.assign(_numNodes, INVALID_PAGE);
    for (NodeId peer = 0; peer < _numNodes; ++peer) {
        if (peer == _node)
            continue;
        auto in_frame = _frames.alloc();
        auto out_frame = _frames.alloc();
        SHRIMP_ASSERT(in_frame && out_frame,
                      "out of frames for kernel channels");
        _frames.pin(*in_frame);
        _frames.pin(*out_frame);
        _channelIn[peer] = *in_frame;
        _channelOut[peer] = *out_frame;
        _channelPeerOfFrame[*in_frame] = peer;

        NiptEntry &e = _ni.nipt().entry(*in_frame);
        e.mappedIn = true;
        e.interruptOnArrival = true;
        e.inSources.push_back(peer);
    }
    _nxService->allocatePages();
}

void
Kernel::enableDsm(const DsmConfig &cfg)
{
    if (_dsm)
        return;
    _dsm = std::make_unique<Dsm>(*this, cfg);
    _dsm->allocatePages();
}

std::uint32_t
Kernel::dsmRpc(NodeId peer, std::uint32_t type,
               const std::uint32_t *payload, std::uint32_t *resp)
{
    if (!_dsm || !Dsm::handlesRpc(type))
        return static_cast<std::uint32_t>(err::INVAL);
    return _dsm->handleRpc(peer, type, payload, resp);
}

PageNum
Kernel::channelInFrame(NodeId peer) const
{
    SHRIMP_ASSERT(peer < _channelIn.size(), "bad peer");
    return _channelIn[peer];
}

void
Kernel::wireChannelOut(NodeId peer, PageNum remote_frame)
{
    PageNum frame = _channelOut.at(peer);
    OutMapping m;
    m.mode = UpdateMode::AUTO_SINGLE;
    m.dstNode = peer;
    m.dstPage = remote_frame;
    _ni.nipt().entry(frame).outLow = m;
}

// ---------------------------------------------------------------------
// Liveness and node-failure recovery
// ---------------------------------------------------------------------

void
Kernel::enableHealth(const HealthParams &params)
{
    if (_health)
        return;
    HealthMonitor::Hooks hooks;
    hooks.sendHeartbeat = [this](NodeId peer) {
        _ni.sendHeartbeat(peer, _health->stampFor(peer));
    };
    hooks.peerDead = [this](NodeId peer) { peerDied(peer); };
    hooks.peerRecovered = [this](NodeId peer) { peerRecovered(peer); };
    hooks.peerEpochChanged = [this](NodeId peer, std::uint32_t inc) {
        peerEpochChanged(peer, inc);
    };
    hooks.selfEpochBumped = [this](std::uint32_t inc) {
        // Our old life's streams must not interleave with the new
        // ones, and grants we hold from before the bump are void.
        _ni.startNewEpoch(inc);
        if (_dsm)
            _dsm->fenceSelf();
    };
    _health = std::make_unique<HealthMonitor>(
        eventQueue(), name() + ".health", _node, _numNodes, params,
        std::move(hooks), &_stats);
    _ni.onHeartbeat = [this](NodeId src, std::uint64_t stamp) {
        _health->heartbeatFrom(src, stamp);
    };
    _ni.onStaleEpochDrop = [this](NodeId) {
        // The NI channel-epoch gate fenced a data packet; roll it into
        // the machine-wide stale-epoch accounting.
        _health->noteFencedDrop();
    };
    _ni.startNewEpoch(_health->selfIncarnation());
    _health->start();
}

std::uint32_t
Kernel::selfIncarnation() const
{
    return _health ? _health->selfIncarnation() : 1;
}

std::uint32_t
Kernel::peerIncarnation(NodeId peer) const
{
    return _health ? _health->peerIncarnation(peer) : 0;
}

void
Kernel::noteFencedDrop()
{
    if (_health)
        _health->noteFencedDrop();
}

void
Kernel::peerEpochChanged(NodeId peer, std::uint32_t inc)
{
    if (peer == _node || peer >= _numNodes)
        return;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "kernel", "peerEpochChanged",
                   {trace::arg("peer",
                               static_cast<std::uint64_t>(peer)),
                    trace::arg("inc",
                               static_cast<std::uint64_t>(inc))});
    }
    // RPCs addressed to the peer's previous life can never complete;
    // doom them with err::STALE_EPOCH and restart both the RPC engine
    // and the reliability channel so new-life traffic starts clean.
    _mapManager->resetPeer(peer, err::STALE_EPOCH);
    _ni.resetChannel(peer);
    if (peer < _channelIn.size() && _channelIn[peer] != INVALID_PAGE) {
        // Stale seq words from the previous life would otherwise
        // replay old RPCs against the reset engine.
        std::vector<std::uint8_t> zeros(PAGE_SIZE, 0);
        _mem.write(pageBase(_channelIn[peer]), zeros.data(), PAGE_SIZE);
    }
    if (_dsm)
        _dsm->peerEpochChanged(peer, inc);
}

bool
Kernel::sendAdmissible(NodeId peer) const
{
    if (!_admission.enabled)
        return true;
    // A SUSPECT peer usually becomes DEAD; admitting sends toward it
    // just grows queues that peerDied() will have to error out.
    if (_admission.rejectSuspectPeers && _health &&
        _health->peerState(peer) != PeerHealth::ALIVE) {
        return false;
    }
    if (_admission.windowFullAfter > 0 && _ni.reliabilityEnabled()) {
        Tick full_since =
            _ni.retransmitBuffer().windowFullSince(peer);
        if (full_since != 0 &&
            curTick() - full_since >= _admission.windowFullAfter) {
            return false;
        }
    }
    return true;
}

void
Kernel::peerDied(NodeId peer)
{
    if (peer == _node || peer >= _numNodes)
        return;
    _failedPeers.insert(peer);
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "kernel", "peerDied",
                   {trace::arg("peer",
                               static_cast<std::uint64_t>(peer))});
    }
    // Error outgoing halves + abort DMA toward the peer, then stop
    // tracking what it had mapped into us, and fail any kernel RPCs
    // still waiting on it so blocked map()/unmap() callers wake up.
    _ni.declarePeerDead(peer);
    _mapManager->purgeDeadPeerIn(peer);
    _mapManager->resetPeer(peer);
    if (_dsm)
        _dsm->peerDied(peer);
}

void
Kernel::peerRecovered(NodeId peer)
{
    if (peer == _node || peer >= _numNodes)
        return;
    _failedPeers.erase(peer);
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "kernel", "peerRecovered",
                   {trace::arg("peer",
                               static_cast<std::uint64_t>(peer))});
    }
    // User mappings toward the peer died with it; the application
    // must re-map. Kernel channel and NX wiring are permanent boot
    // state, so heal those halves in place and restart both protocol
    // engines from sequence zero to match the peer's fresh state.
    _mapManager->purgeOutTo(peer);
    _mapManager->resetPeer(peer);
    _ni.healMappingsToward(peer);
    _ni.resetChannel(peer);
    if (peer < _channelIn.size() && _channelIn[peer] != INVALID_PAGE) {
        // Stale seq words in the channel-in page would replay old
        // RPCs against the reset engine.
        std::vector<std::uint8_t> zeros(PAGE_SIZE, 0);
        _mem.write(pageBase(_channelIn[peer]), zeros.data(),
                   PAGE_SIZE);
    }
    if (_dsm)
        _dsm->peerRecovered(peer);
}

void
Kernel::crash()
{
    if (_crashed)
        return;
    _crashed = true;
    ++_crashes;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "kernel", "nodeCrash", {});
    }
    if (_health)
        _health->pause();
    if (_quantumEvent.scheduled())
        deschedule(_quantumEvent);
    _quantumTarget = nullptr;
    if (_running) {
        // Park it; memory survives the crash in this model, so the
        // process resumes from the same PC after restart.
        _running->state = ProcState::READY;
        _readyQueue.push_back(_running);
        _running = nullptr;
    }
    _stalledOnOutFifo = false;
    _cpu.setContext(nullptr);
    _cpu.suspend();
}

void
Kernel::restart()
{
    if (!_crashed)
        return;
    _crashed = false;
    ++_restarts;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "kernel", "nodeRestart", {});
    }
    // Whatever protocol state predates the crash is garbage now: fail
    // in-flight RPCs and restart every peer channel from scratch.
    std::vector<std::uint8_t> zeros(PAGE_SIZE, 0);
    for (NodeId peer = 0; peer < _numNodes; ++peer) {
        if (peer == _node)
            continue;
        _mapManager->resetPeer(peer);
        if (peer < _channelIn.size() &&
            _channelIn[peer] != INVALID_PAGE) {
            _mem.write(pageBase(_channelIn[peer]), zeros.data(),
                       PAGE_SIZE);
        }
    }
    if (_dsm)
        _dsm->reset();
    if (_health)
        _health->resume();
    auto t = scheduleNext(curTick());
    if (t)
        _cpu.resumeAt(*t);
}

void
Kernel::writeChannelWord(NodeId peer, Addr offset, std::uint32_t value)
{
    PageNum frame = _channelOut.at(peer);
    SHRIMP_ASSERT(frame != INVALID_PAGE, "channel to ", peer,
                  " not wired");
    charge(nullptr, _costs.channelWordWrite);
    Addr paddr = pageBase(frame) + offset;
    _bus.postWrite(paddr, &value, 4, BusMaster::CPU, curTick());
}

std::uint32_t
Kernel::readChannelWord(NodeId peer, Addr offset) const
{
    PageNum frame = _channelIn.at(peer);
    return static_cast<std::uint32_t>(
        _mem.readInt(pageBase(frame) + offset, 4));
}

// ---------------------------------------------------------------------
// Direct (host-level) mapping
// ---------------------------------------------------------------------

std::uint64_t
Kernel::mapDirect(Process &src_proc, Addr src_vaddr, std::size_t npages,
                  Kernel &dst_kernel, Process &dst_proc, Addr dst_vaddr,
                  UpdateMode mode, bool arrival_interrupt)
{
    return mapDirectRange(src_proc, src_vaddr, npages * PAGE_SIZE,
                          dst_kernel, dst_proc, dst_vaddr, mode,
                          arrival_interrupt);
}

std::uint64_t
Kernel::mapDirectRange(Process &src_proc, Addr src_vaddr, Addr nbytes,
                       Kernel &dst_kernel, Process &dst_proc,
                       Addr dst_vaddr, UpdateMode mode,
                       bool arrival_interrupt)
{
    SHRIMP_ASSERT(nbytes > 0, "empty mapping");

    if (peerFailed(dst_kernel.nodeId()) || dst_kernel.crashed())
        return err::HOSTDOWN;

    if (!sendAdmissible(dst_kernel.nodeId())) {
        countSendRejected();
        return err::WOULDBLOCK;
    }

    // The whole walk is synchronous, so a B/E span brackets it
    // exactly; the args record what was asked, not what succeeded.
    trace::Tracer *tracer = eventQueue().tracer();
    if (tracer) {
        tracer->begin(
            curTick(), name(), "kernel", "mapDirectRange",
            {trace::arg("srcVaddr", src_vaddr),
             trace::arg("nbytes", nbytes),
             trace::arg("dstNode", static_cast<std::uint64_t>(
                                       dst_kernel.nodeId()))});
    }

    // Walk the source range page by page; each source page
    // contributes one mapping half per destination page it touches
    // (at most two, the paper's split-page limit).
    std::uint64_t result = [&]() -> std::uint64_t {
    Addr src_end = src_vaddr + nbytes;
    Addr cursor = src_vaddr;
    while (cursor < src_end) {
        PageNum src_vpage = pageOf(cursor);
        Addr page_limit = pageBase(src_vpage) + PAGE_SIZE;

        Pte *src_pte = src_proc.space().pageTable().find(src_vpage);
        if (!src_pte || !src_pte->writable)
            return err::PERM;

        // The half extends to the source page end, the range end, or
        // the next destination page boundary, whichever is first.
        Addr dv = dst_vaddr + (cursor - src_vaddr);
        Addr dst_page_limit = pageBase(pageOf(dv)) + PAGE_SIZE;
        Addr half_end = page_limit;
        if (src_end < half_end)
            half_end = src_end;
        if (cursor + (dst_page_limit - dv) < half_end)
            half_end = cursor + (dst_page_limit - dv);

        PageNum dst_vpage = pageOf(dv);
        Pte *dst_pte = dst_proc.space().pageTable().find(dst_vpage);
        if (!dst_pte || !dst_pte->writable)
            return err::PERM;

        // The hardware supports at most two mapping halves per page
        // (Section 3.2); refuse anything that does not fit the page's
        // remaining slot.
        if (!_mapManager->canInstallHalf(src_pte->frame,
                                         pageOffset(cursor),
                                         half_end -
                                             pageBase(src_vpage))) {
            return err::AGAIN;
        }

        // Receiver side.
        MapManager::InRecord in_rec;
        in_rec.pid = dst_proc.pid();
        in_rec.vpage = dst_vpage;
        in_rec.srcNode = _node;
        in_rec.flags =
            arrival_interrupt ? map_flags::ARRIVAL_INTERRUPT : 0;
        in_rec.pinned = dst_kernel.consistencyPolicy() ==
                        ConsistencyPolicy::PIN;
        dst_kernel.mapManager().recordInDirect(in_rec, dst_pte->frame,
                                               arrival_interrupt);

        // Source side.
        MapManager::OutRecord out_rec;
        out_rec.pid = src_proc.pid();
        out_rec.vpage = src_vpage;
        out_rec.halfBegin = pageOffset(cursor);
        out_rec.halfEnd = half_end - pageBase(src_vpage);
        out_rec.dstDelta = static_cast<std::int32_t>(
            static_cast<std::int64_t>(pageOffset(dv)) -
            static_cast<std::int64_t>(pageOffset(cursor)));
        out_rec.dstNode = dst_kernel.nodeId();
        out_rec.dstPid = dst_proc.pid();
        out_rec.dstVpage = dst_vpage;
        out_rec.dstFrame = dst_pte->frame;
        out_rec.mode = mode;
        out_rec.flags = in_rec.flags;
        // Treat "covers the whole remainder of the page" as the
        // canonical full/low half so unsplit pages stay unsplit.
        if (out_rec.halfBegin == 0 && out_rec.halfEnd == PAGE_SIZE) {
            // whole page
        }
        _mapManager->recordOutDirect(out_rec, src_pte->frame);

        // Mapped-out pages must be write-through so the NI snoops
        // every store (Section 2).
        src_pte->policy = CachePolicy::WRITE_THROUGH;

        cursor = half_end;
    }
    return err::OK;
    }();

    if (tracer) {
        tracer->end(curTick(), name(), "kernel", "mapDirectRange",
                    {trace::arg("err", result)});
    }
    return result;
}

Addr
Kernel::mapCommandPages(Process &proc, Addr vaddr, std::size_t npages)
{
    std::vector<PageNum> cmd_frames;
    cmd_frames.reserve(npages);
    for (std::size_t i = 0; i < npages; ++i) {
        Pte *pte =
            proc.space().pageTable().find(pageOf(vaddr) + i);
        SHRIMP_ASSERT(pte, "command window over unmapped page");
        cmd_frames.push_back(_ni.cmdPageFor(pte->frame));
    }
    return proc.space().mapPhysicalScatter(
        cmd_frames, CachePolicy::UNCACHEABLE, true);
}

// ---------------------------------------------------------------------
// Paging
// ---------------------------------------------------------------------

void
Kernel::evictUserPage(Process &proc, Addr vaddr,
                      std::function<void(bool)> done)
{
    PageNum vpage = pageOf(vaddr);
    Pte *pte = proc.space().pageTable().find(vpage);
    if (!pte) {
        done(false);
        return;
    }
    PageNum frame = pte->frame;

    bool has_in = _mapManager->hasInMappings(frame);
    if (_consistency == ConsistencyPolicy::PIN &&
        (has_in || _frames.isPinned(frame))) {
        // The simple policy: mapped-in pages are pinned, never paged.
        done(false);
        return;
    }
    if (_frames.isPinned(frame)) {
        done(false);    // kernel page or otherwise wired
        return;
    }

    Pid pid = proc.pid();
    auto proceed = [this, &proc, pid, vpage, frame,
                    done = std::move(done)]() {
        charge(nullptr, _costs.pageSwap);

        Pte *pte2 = proc.space().pageTable().find(vpage);
        SHRIMP_ASSERT(pte2 && pte2->frame == frame,
                      "page moved during shootdown");

        SwapEntry entry;
        entry.data.resize(PAGE_SIZE);
        _mem.read(pageBase(frame), entry.data.data(), PAGE_SIZE);
        entry.pte = *pte2;
        _swap[{pid, vpage}] = std::move(entry);

        _mapManager->frameDropped(frame);
        proc.space().pageTable().unmap(vpage);
        proc.space().forgetFrame(frame);
        _frames.free(frame);
        ++_pageEvictions;
        done(true);
    };

    if (has_in) {
        // INVALIDATE policy: shoot down remote NIPT entries first.
        Tick t0 = curTick();
        if (auto *t = eventQueue().tracer()) {
            t->instant(t0, name(), "kernel", "shootdownRequest",
                       {trace::arg("frame",
                                   static_cast<std::uint64_t>(frame))});
        }
        _mapManager->shootdown(
            frame, [this, t0, frame,
                    proceed = std::move(proceed)]() mutable {
                // The shootdown round-trips the mesh; render it as a
                // complete span from request to the all-acked call.
                if (auto *t = eventQueue().tracer()) {
                    t->complete(
                        t0, curTick(), name(), "kernel", "shootdown",
                        {trace::arg("frame",
                                    static_cast<std::uint64_t>(frame))});
                }
                proceed();
            });
    } else {
        proceed();
    }
}

std::uint64_t
Kernel::pageIn(Process &proc, PageNum vpage)
{
    auto it = _swap.find({proc.pid(), vpage});
    if (it == _swap.end())
        return err::INVAL;

    auto frame = _frames.alloc();
    if (!frame)
        return err::NOMEM;

    SwapEntry &entry = it->second;
    _mem.write(pageBase(*frame), entry.data.data(), PAGE_SIZE);
    Pte pte = entry.pte;
    pte.frame = *frame;
    proc.space().pageTable().map(vpage, pte);
    proc.space().adoptFrame(*frame);
    _swap.erase(it);

    // Reinstall outgoing NIPT state at the new frame.
    _mapManager->frameMoved(proc.pid(), vpage, *frame);
    ++_pageIns;
    return err::OK;
}

bool
Kernel::inSwap(Pid pid, PageNum vpage) const
{
    return _swap.count({pid, vpage}) != 0;
}

// ---------------------------------------------------------------------
// TrapHandler
// ---------------------------------------------------------------------

bool
Kernel::readUserWords(ExecContext &ctx, Addr vaddr, std::uint32_t *out,
                      unsigned nwords) const
{
    for (unsigned i = 0; i < nwords; ++i) {
        Translation t = ctx.space->translate(vaddr + 4 * i, false);
        if (!t.ok())
            return false;
        out[i] = static_cast<std::uint32_t>(_mem.readInt(t.paddr, 4));
    }
    return true;
}

std::optional<Tick>
Kernel::syscall(ExecContext &ctx, std::uint64_t num, Tick now)
{
    Tick t = now + charge(&ctx, _costs.syscallDispatch);

    switch (num) {
      case sys::EXIT: {
        Process &proc = processOf(ctx);
        proc.state = ProcState::EXITED;
        ctx.halted = true;
        _running = nullptr;
        return scheduleNext(t);
      }

      case sys::YIELD: {
        Process &proc = processOf(ctx);
        if (_readyQueue.empty())
            return t;
        proc.state = ProcState::READY;
        _readyQueue.push_back(&proc);
        _running = nullptr;
        return scheduleNext(t);
      }

      case sys::GETPID:
        ctx.regs[R0] = ctx.pid;
        return t;

      case sys::NODE_ID:
        ctx.regs[R0] = _node;
        return t;

      case sys::MAP:
        return doMapSyscall(ctx, t);
      case sys::UNMAP:
        return doUnmapSyscall(ctx, t);
      case sys::WAIT_ARRIVAL:
        return doWaitArrival(ctx, t);

      case sys::NX_CSEND:
      case sys::NX_CRECV: {
        std::uint32_t words[5];
        if (!readUserWords(ctx, ctx.regs[R1], words, 5)) {
            ctx.regs[R0] = err::INVAL;
            return t;
        }
        NxArgs args;
        args.type = words[0];
        args.buf = words[1];
        args.nbytes = words[2];
        args.node = words[3];
        args.pid = words[4];
        return num == sys::NX_CSEND ? _nxService->csend(ctx, args, t)
                                    : _nxService->crecv(ctx, args, t);
      }

      default:
        SHRIMP_WARN("unknown syscall ", num, " from '", ctx.name, "'");
        ctx.regs[R0] = err::INVAL;
        return t;
    }
}

std::optional<Tick>
Kernel::doMapSyscall(ExecContext &ctx, Tick now)
{
    std::uint32_t words[7];
    if (!readUserWords(ctx, ctx.regs[R1], words, 7)) {
        ctx.regs[R0] = err::INVAL;
        return now;
    }
    MapArgs args;
    args.localVaddr = words[0];
    args.npages = words[1];
    args.dstNode = words[2];
    args.dstPid = words[3];
    args.dstVaddr = words[4];
    args.mode = words[5];
    args.flags = words[6];

    if (args.npages == 0) {
        ctx.regs[R0] = err::INVAL;
        return now;
    }

    Tick t = now + charge(&ctx, _costs.mapValidatePerPage * args.npages);

    Process &proc = processOf(ctx);
    blockCurrent(ctx);
    auto next = scheduleNext(t);

    _mapManager->startMap(proc, args, [this, &proc](std::uint64_t st) {
        proc.ctx.regs[R0] = st;
        makeReady(proc);
    });
    return next;
}

std::optional<Tick>
Kernel::doUnmapSyscall(ExecContext &ctx, Tick now)
{
    std::uint32_t words[7];
    if (!readUserWords(ctx, ctx.regs[R1], words, 7)) {
        ctx.regs[R0] = err::INVAL;
        return now;
    }
    MapArgs args;
    args.localVaddr = words[0];
    args.npages = words[1];
    args.dstNode = words[2];
    args.dstPid = words[3];
    args.dstVaddr = words[4];

    Tick t = now + charge(&ctx, _costs.mapValidatePerPage * args.npages);

    Process &proc = processOf(ctx);
    blockCurrent(ctx);
    auto next = scheduleNext(t);

    _mapManager->startUnmap(proc, args,
                            [this, &proc](std::uint64_t st) {
                                proc.ctx.regs[R0] = st;
                                makeReady(proc);
                            });
    return next;
}

std::optional<Tick>
Kernel::doWaitArrival(ExecContext &ctx, Tick now)
{
    Translation t = ctx.space->translate(ctx.regs[R1], false);
    if (!t.ok()) {
        ctx.regs[R0] = 0;
        return now;
    }
    PageNum frame = pageOf(t.paddr);
    std::uint64_t last_seen = ctx.regs[R2];
    std::uint64_t count = arrivalCount(frame);
    if (count != last_seen) {
        ctx.regs[R0] = count;
        return now;
    }
    Process &proc = processOf(ctx);
    proc.waitFrame = frame;
    blockCurrent(ctx);
    _arrivalWaiters[frame].push_back(&proc);
    return scheduleNext(now);
}

std::optional<Tick>
Kernel::fault(ExecContext &ctx, FaultKind kind, Addr vaddr, bool write,
              Tick now)
{
    Process &proc = processOf(ctx);
    PageNum vpage = pageOf(vaddr);
    Tick t = now + charge(&ctx, _costs.faultHandler);

    // DSM window: the fault becomes a VMMC transaction. NOT_PRESENT
    // fetches the page; a write PROTECTION fault on a READ_SHARED page
    // is the upgrade path.
    if (_dsm && _dsm->managesFault(proc, vaddr) &&
        (kind == FaultKind::NOT_PRESENT ||
         (kind == FaultKind::PROTECTION && write))) {
        blockCurrent(ctx);
        auto next = scheduleNext(t);
        _dsm->faultOn(proc, vaddr, write,
                      [this, &proc](std::uint64_t status) {
                          if (status == err::OK) {
                              makeReady(proc);
                              return;
                          }
                          SHRIMP_WARN("killing '", proc.name(),
                                      "': DSM fault failed with ",
                                      status);
                          proc.state = ProcState::EXITED;
                          proc.ctx.halted = true;
                      });
        return next;
    }

    if (kind == FaultKind::NOT_PRESENT) {
        if (inSwap(proc.pid(), vpage)) {
            Tick t2 = t + charge(&ctx, _costs.pageSwap);
            std::uint64_t e = pageIn(proc, vpage);
            if (e == err::OK)
                return t2;      // retry the instruction
        }
        SHRIMP_WARN("killing '", proc.name(), "': access to unmapped ",
                    vaddr);
        proc.state = ProcState::EXITED;
        ctx.halted = true;
        _running = nullptr;
        return scheduleNext(t);
    }

    if (kind == FaultKind::PROTECTION && write &&
        _mapManager->needsRemap(proc.pid(), vpage)) {
        // An invalidated mapping (Section 4.4): re-establish it, then
        // retry the store.
        blockCurrent(ctx);
        auto next = scheduleNext(t);
        _mapManager->startRemap(
            proc, vpage, [this, &proc](std::uint64_t status) {
                if (status == err::OK) {
                    makeReady(proc);
                    return;
                }
                // The destination is gone (e.g. its process was
                // reaped): the mapping cannot be re-established.
                SHRIMP_WARN("killing '", proc.name(),
                            "': remap failed with ", status);
                proc.state = ProcState::EXITED;
                proc.ctx.halted = true;
            });
        return next;
    }

    SHRIMP_WARN("killing '", proc.name(), "': protection fault at ",
                vaddr);
    proc.state = ProcState::EXITED;
    ctx.halted = true;
    _running = nullptr;
    return scheduleNext(t);
}

void
Kernel::halted(ExecContext &ctx, Tick now)
{
    Process &proc = processOf(ctx);
    proc.state = ProcState::EXITED;
    _running = nullptr;
    auto t = scheduleNext(now + charge(nullptr, _costs.contextSwitch));
    if (t)
        _cpu.resumeAt(*t);
}

} // namespace shrimp
