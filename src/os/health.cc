#include "os/health.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

const char *
peerHealthName(PeerHealth s)
{
    switch (s) {
      case PeerHealth::ALIVE:
        return "ALIVE";
      case PeerHealth::SUSPECT:
        return "SUSPECT";
      case PeerHealth::DEAD:
        return "DEAD";
    }
    return "?";
}

HealthMonitor::HealthMonitor(EventQueue &eq, std::string name,
                             NodeId self, unsigned num_nodes,
                             const HealthParams &params, Hooks hooks,
                             stats::Group *parent_stats)
    : SimObject(eq, std::move(name)),
      _params(params),
      _self(self),
      _peers(num_nodes),
      _tickEvent([this] { tick(); }, "health tick"),
      _hooks(std::move(hooks)),
      _stats("health", parent_stats)
{
    SHRIMP_ASSERT(_params.heartbeatPeriod > 0, "zero heartbeat period");
    SHRIMP_ASSERT(_params.suspectTimeout >= _params.heartbeatPeriod,
                  "suspect timeout shorter than one heartbeat");
    SHRIMP_ASSERT(_params.deadTimeout > _params.suspectTimeout,
                  "dead timeout must exceed suspect timeout");
    _stats.addStat(&_heartbeatsSent);
    _stats.addStat(&_heartbeatsReceived);
    _stats.addStat(&_suspects);
    _stats.addStat(&_peersDeclaredDead);
    _stats.addStat(&_peersRecovered);
    _stats.addStat(&_partitionsDeclared);
    _stats.addStat(&_staleEpochRejects);
}

void
HealthMonitor::start()
{
    if (_running)
        return;
    _running = true;
    Tick now = curTick();
    for (PeerState &p : _peers)
        p.lastSeen = now;       // grace period: nobody starts SUSPECT
    reschedule(_tickEvent, now + _params.heartbeatPeriod);
}

void
HealthMonitor::pause()
{
    if (!_running)
        return;
    _running = false;
    if (_tickEvent.scheduled())
        deschedule(_tickEvent);
}

void
HealthMonitor::resume()
{
    if (_running)
        return;
    _running = true;
    Tick now = curTick();
    // Fresh grace period; peers we declared DEAD before (or while) we
    // were down stay DEAD until their next heartbeat proves otherwise.
    for (PeerState &p : _peers)
        p.lastSeen = now;
    // A restart is a new life: anything still in flight from the old
    // one must be fenced machine-wide.
    bumpIncarnation("restart");
    reschedule(_tickEvent, now + _params.heartbeatPeriod);
}

std::uint32_t
HealthMonitor::peerIncarnation(NodeId peer) const
{
    return _peers.at(peer).incarnation;
}

std::uint64_t
HealthMonitor::stampFor(NodeId peer) const
{
    return (static_cast<std::uint64_t>(_selfInc) << 32) |
           _peers.at(peer).incarnation;
}

void
HealthMonitor::bumpIncarnation(const char *why)
{
    ++_selfInc;
    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "health", "incarnationBump",
                   {trace::arg("incarnation",
                               static_cast<std::uint64_t>(_selfInc)),
                    trace::arg("why", why)});
    }
    SHRIMP_DTRACE("Health", curTick(), name(), "incarnation -> ",
                  _selfInc, " (", why, ")");
    if (_hooks.selfEpochBumped)
        _hooks.selfEpochBumped(_selfInc);
}

bool
HealthMonitor::admitStamp(NodeId src, std::uint64_t stamp)
{
    return checkStamp(src, stamp) == StampVerdict::ADMIT;
}

HealthMonitor::StampVerdict
HealthMonitor::checkStamp(NodeId src, std::uint64_t stamp)
{
    if (src >= _peers.size() || src == _self)
        return StampVerdict::ADMIT;
    std::uint32_t inc = stampIncarnation(stamp);
    std::uint32_t view = stampView(stamp);
    PeerState &p = _peers[src];

    // A message from an older life of the sender is a relic of a
    // healed partition or a pre-restart stream.
    const char *reason = nullptr;
    StampVerdict verdict = StampVerdict::ADMIT;
    if (inc != 0 && p.incarnation != 0 &&
        Incarnation::newerLife(p.incarnation, inc)) {
        reason = "staleSender";
        verdict = StampVerdict::STALE_SENDER;
    }

    // Record a newer sender incarnation BEFORE the view check: even if
    // the message itself is fenced below, membership knowledge must
    // advance, or two nodes that bumped simultaneously (both sides of
    // a heal) would carry stale views of each other and reject each
    // other's heartbeats forever.
    if (!reason && Incarnation::newerLife(inc, p.incarnation)) {
        bool first = p.incarnation == 0;
        p.incarnation = inc;
        if (!first) {
            if (auto *t = eventQueue().tracer()) {
                t->instant(curTick(), name(), "health",
                           "peerEpochChanged",
                           {trace::arg("peer",
                                       static_cast<std::uint64_t>(src)),
                            trace::arg("inc",
                                       static_cast<std::uint64_t>(inc))});
            }
            if (_hooks.peerEpochChanged)
                _hooks.peerEpochChanged(src, inc);
        }
    }

    // A message addressed to a previous life of this node (the sender
    // has not yet observed our bump) must not touch current state.
    if (!reason && view != 0 && !Incarnation::sameLife(view, _selfInc)) {
        reason = "staleView";
        verdict = StampVerdict::STALE_VIEW;
    }

    if (reason) {
        ++_staleEpochRejects;
        if (auto *t = eventQueue().tracer()) {
            t->instant(
                curTick(), name(), "health", "staleEpochReject",
                {trace::arg("src", static_cast<std::uint64_t>(src)),
                 trace::arg("inc", static_cast<std::uint64_t>(inc)),
                 trace::arg("view", static_cast<std::uint64_t>(view)),
                 trace::arg("reason", reason)});
        }
        SHRIMP_DTRACE("Health", curTick(), name(), "fenced msg from ",
                      src, " inc ", inc, " view ", view, " (", reason,
                      ")");
    }
    return verdict;
}

void
HealthMonitor::noteFencedDrop()
{
    ++_staleEpochRejects;
}

bool
HealthMonitor::quorumReachable() const
{
    // A two-node machine has no possible strict majority once the
    // peer is silent; silence must still mean death there or no
    // failure could ever be declared.
    if (_peers.size() <= 2)
        return true;
    unsigned reachable = 1;     // self
    for (NodeId peer = 0; peer < _peers.size(); ++peer) {
        if (peer != _self && _peers[peer].state == PeerHealth::ALIVE)
            ++reachable;
    }
    return reachable * 2 > _peers.size();
}

void
HealthMonitor::heartbeatFrom(NodeId src, std::uint64_t stamp)
{
    if (!_running || src >= _peers.size() || src == _self)
        return;
    // A heartbeat from a stale life is not liveness evidence: it must
    // not refresh lastSeen or resurrect the peer. A stale VIEW is
    // different: the sender's current life demonstrably produced this
    // heartbeat, it just has not observed our bump yet. Fencing those
    // too makes bumps metastable -- every bump would reject the next
    // heartbeat round machine-wide, re-declare peers dead, and each
    // recovery would bump again, churning forever.
    if (checkStamp(src, stamp) == StampVerdict::STALE_SENDER)
        return;
    ++_heartbeatsReceived;
    PeerState &p = _peers[src];
    p.lastSeen = curTick();
    if (p.state != PeerHealth::ALIVE)
        transition(src, PeerHealth::ALIVE);
}

void
HealthMonitor::reportPeerFailure(NodeId peer)
{
    if (!_running || peer >= _peers.size() || peer == _self)
        return;
    if (_peers[peer].state != PeerHealth::DEAD)
        transition(peer, PeerHealth::DEAD);
}

PeerHealth
HealthMonitor::peerState(NodeId peer) const
{
    return _peers.at(peer).state;
}

void
HealthMonitor::tick()
{
    if (!_running)
        return;
    Tick now = curTick();

    for (NodeId peer = 0; peer < _peers.size(); ++peer) {
        if (peer == _self)
            continue;
        // Keep heartbeating DEAD peers too: a restarted node learns we
        // are alive from our keepalives, just as we learn from its.
        if (_hooks.sendHeartbeat) {
            ++_heartbeatsSent;
            _hooks.sendHeartbeat(peer);
        }
        PeerState &p = _peers[peer];
        Tick silence = now - p.lastSeen;
        if (p.state == PeerHealth::ALIVE &&
            silence >= _params.suspectTimeout) {
            transition(peer, PeerHealth::SUSPECT);
        }
        if (p.state == PeerHealth::SUSPECT &&
            silence >= _params.deadTimeout) {
            if (quorumReachable()) {
                transition(peer, PeerHealth::DEAD);
            } else if (!p.quorumStalled) {
                // We are (probably) the minority side of a partition:
                // without a reachable majority, silence proves nothing
                // about the peer. Stall here instead of declaring the
                // majority dead.
                p.quorumStalled = true;
                ++_partitionsDeclared;
                if (auto *t = eventQueue().tracer()) {
                    t->instant(
                        now, name(), "health", "partitionSuspected",
                        {trace::arg("peer",
                                    static_cast<std::uint64_t>(peer))});
                }
                SHRIMP_DTRACE("Health", now, name(), "peer ", peer,
                              " past dead timeout but no quorum; "
                              "stalling at SUSPECT");
            }
        }
    }

    reschedule(_tickEvent, now + _params.heartbeatPeriod);
}

void
HealthMonitor::transition(NodeId peer, PeerHealth to)
{
    PeerState &p = _peers[peer];
    PeerHealth from = p.state;
    p.state = to;

    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "health", "peerState",
                   {trace::arg("peer", static_cast<std::uint64_t>(peer)),
                    trace::arg("from", peerHealthName(from)),
                    trace::arg("to", peerHealthName(to))});
    }
    SHRIMP_DTRACE("Health", curTick(), name(), "peer ", peer, " ",
                  peerHealthName(from), " -> ", peerHealthName(to));

    switch (to) {
      case PeerHealth::SUSPECT:
        ++_suspects;
        break;
      case PeerHealth::DEAD:
        p.quorumStalled = false;
        ++_peersDeclaredDead;
        if (_hooks.peerDead)
            _hooks.peerDead(peer);
        break;
      case PeerHealth::ALIVE:
        if (from == PeerHealth::DEAD || p.quorumStalled) {
            // The far side of a partition (or a restarted peer) is
            // back. Start a new life of our own first, so any of our
            // pre-partition traffic still queued in the fabric is
            // fenced by every receiver; then reintegrate the peer.
            bool stalled = p.quorumStalled;
            for (PeerState &q : _peers)
                q.quorumStalled = false;
            bumpIncarnation(stalled ? "partition heal"
                                    : "peer recovered");
        }
        if (from == PeerHealth::DEAD) {
            ++_peersRecovered;
            if (_hooks.peerRecovered)
                _hooks.peerRecovered(peer);
        }
        break;
    }
}

} // namespace shrimp
