#include "os/health.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace shrimp
{

const char *
peerHealthName(PeerHealth s)
{
    switch (s) {
      case PeerHealth::ALIVE:
        return "ALIVE";
      case PeerHealth::SUSPECT:
        return "SUSPECT";
      case PeerHealth::DEAD:
        return "DEAD";
    }
    return "?";
}

HealthMonitor::HealthMonitor(EventQueue &eq, std::string name,
                             NodeId self, unsigned num_nodes,
                             const HealthParams &params, Hooks hooks,
                             stats::Group *parent_stats)
    : SimObject(eq, std::move(name)),
      _params(params),
      _self(self),
      _peers(num_nodes),
      _tickEvent([this] { tick(); }, "health tick"),
      _hooks(std::move(hooks)),
      _stats("health", parent_stats)
{
    SHRIMP_ASSERT(_params.heartbeatPeriod > 0, "zero heartbeat period");
    SHRIMP_ASSERT(_params.suspectTimeout >= _params.heartbeatPeriod,
                  "suspect timeout shorter than one heartbeat");
    SHRIMP_ASSERT(_params.deadTimeout > _params.suspectTimeout,
                  "dead timeout must exceed suspect timeout");
    _stats.addStat(&_heartbeatsSent);
    _stats.addStat(&_heartbeatsReceived);
    _stats.addStat(&_suspects);
    _stats.addStat(&_peersDeclaredDead);
    _stats.addStat(&_peersRecovered);
}

void
HealthMonitor::start()
{
    if (_running)
        return;
    _running = true;
    Tick now = curTick();
    for (PeerState &p : _peers)
        p.lastSeen = now;       // grace period: nobody starts SUSPECT
    reschedule(_tickEvent, now + _params.heartbeatPeriod);
}

void
HealthMonitor::pause()
{
    if (!_running)
        return;
    _running = false;
    if (_tickEvent.scheduled())
        deschedule(_tickEvent);
}

void
HealthMonitor::resume()
{
    if (_running)
        return;
    _running = true;
    Tick now = curTick();
    // Fresh grace period; peers we declared DEAD before (or while) we
    // were down stay DEAD until their next heartbeat proves otherwise.
    for (PeerState &p : _peers)
        p.lastSeen = now;
    reschedule(_tickEvent, now + _params.heartbeatPeriod);
}

void
HealthMonitor::heartbeatFrom(NodeId src)
{
    if (!_running || src >= _peers.size() || src == _self)
        return;
    ++_heartbeatsReceived;
    PeerState &p = _peers[src];
    p.lastSeen = curTick();
    if (p.state != PeerHealth::ALIVE)
        transition(src, PeerHealth::ALIVE);
}

void
HealthMonitor::reportPeerFailure(NodeId peer)
{
    if (!_running || peer >= _peers.size() || peer == _self)
        return;
    if (_peers[peer].state != PeerHealth::DEAD)
        transition(peer, PeerHealth::DEAD);
}

PeerHealth
HealthMonitor::peerState(NodeId peer) const
{
    return _peers.at(peer).state;
}

void
HealthMonitor::tick()
{
    if (!_running)
        return;
    Tick now = curTick();

    for (NodeId peer = 0; peer < _peers.size(); ++peer) {
        if (peer == _self)
            continue;
        // Keep heartbeating DEAD peers too: a restarted node learns we
        // are alive from our keepalives, just as we learn from its.
        if (_hooks.sendHeartbeat) {
            ++_heartbeatsSent;
            _hooks.sendHeartbeat(peer);
        }
        PeerState &p = _peers[peer];
        Tick silence = now - p.lastSeen;
        if (p.state == PeerHealth::ALIVE &&
            silence >= _params.suspectTimeout) {
            transition(peer, PeerHealth::SUSPECT);
        }
        if (p.state == PeerHealth::SUSPECT &&
            silence >= _params.deadTimeout) {
            transition(peer, PeerHealth::DEAD);
        }
    }

    reschedule(_tickEvent, now + _params.heartbeatPeriod);
}

void
HealthMonitor::transition(NodeId peer, PeerHealth to)
{
    PeerState &p = _peers[peer];
    PeerHealth from = p.state;
    p.state = to;

    if (auto *t = eventQueue().tracer()) {
        t->instant(curTick(), name(), "health", "peerState",
                   {trace::arg("peer", static_cast<std::uint64_t>(peer)),
                    trace::arg("from", peerHealthName(from)),
                    trace::arg("to", peerHealthName(to))});
    }
    SHRIMP_DTRACE("Health", curTick(), name(), "peer ", peer, " ",
                  peerHealthName(from), " -> ", peerHealthName(to));

    switch (to) {
      case PeerHealth::SUSPECT:
        ++_suspects;
        break;
      case PeerHealth::DEAD:
        ++_peersDeclaredDead;
        if (_hooks.peerDead)
            _hooks.peerDead(peer);
        break;
      case PeerHealth::ALIVE:
        if (from == PeerHealth::DEAD) {
            ++_peersRecovered;
            if (_hooks.peerRecovered)
                _hooks.peerRecovered(peer);
        }
        break;
    }
}

} // namespace shrimp
