/**
 * @file
 * MapManager: the mapping half of the kernel.
 *
 * Implements the map()/unmap() protocol between kernels over the
 * in-band kernel channel, the registries of outgoing and incoming
 * mapping records, and the NIPT consistency protocol of Section 4.4:
 * before a node pages out a frame with incoming mappings, it asks
 * every source kernel to invalidate its NIPT entries; sources mark the
 * mapped-out virtual pages read-only, so a later store faults and the
 * kernel re-establishes the mapping on demand (REMAP).
 *
 * Channel wire format: each direction of each node pair has one page.
 * Requests occupy the 32-byte record at offset 0, responses the record
 * at offset 32. A record is [seq, type, payload[6]]; the sender writes
 * payload and type first and seq last, so (with the mesh's in-order
 * delivery) a changed seq implies a complete record.
 *
 * The correctness of eviction also leans on in-order delivery exactly
 * as the paper intends: a source clears its NIPT entries before
 * writing the INVALIDATE acknowledgement, so every user-data packet it
 * sent precedes the ack on the same source->evictor path, and the
 * evictor sees all in-flight data land before it frees the frame.
 */

#ifndef SHRIMP_OS_MAP_MANAGER_HH
#define SHRIMP_OS_MAP_MANAGER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "nic/nipt.hh"
#include "os/syscalls.hh"
#include "sim/types.hh"

namespace shrimp
{

class Kernel;
class Process;

/** Kernel channel record geometry. */
namespace channel
{
constexpr Addr reqOffset = 0;
constexpr Addr respOffset = 32;
constexpr Addr seqWord = 0;     //!< byte offset within a record
constexpr Addr typeWord = 4;
constexpr Addr payloadWord = 8;
constexpr unsigned payloadWords = 6;

/** RPC types. */
constexpr std::uint32_t MAP_PAGE = 1;   //!< also used for REMAP
constexpr std::uint32_t UNMAP_PAGE = 2;
constexpr std::uint32_t INVALIDATE = 3;

/** DSM protocol (dispatched to the kernel's Dsm service). */
constexpr std::uint32_t DSM_GET = 4;    //!< requester -> home: fault
constexpr std::uint32_t DSM_PUT = 5;    //!< home -> requester: grant
constexpr std::uint32_t DSM_FETCH = 6;  //!< home -> owner: recall
constexpr std::uint32_t DSM_WB = 7;     //!< owner -> home: writeback
constexpr std::uint32_t DSM_INVAL = 8;  //!< home -> sharer: shootdown
} // namespace channel

/** One in-flight or queued kernel RPC. */
struct KernelRpc
{
    std::uint32_t type = 0;
    std::array<std::uint32_t, channel::payloadWords> payload{};
    /** Called with the response payload words. */
    std::function<void(const std::uint32_t *resp)> onResponse;
};

/** The mapping/consistency manager owned by each Kernel. */
class MapManager
{
  public:
    explicit MapManager(Kernel &kernel);

    /**
     * Source-side record of one outgoing mapping half. A whole-page
     * mapping has halfBegin 0 and halfEnd PAGE_SIZE; split mappings
     * (Section 3.2) cover [halfBegin, halfEnd) of the source page.
     */
    struct OutRecord
    {
        Pid pid = 0;
        PageNum vpage = INVALID_PAGE;
        Addr halfBegin = 0;
        Addr halfEnd = PAGE_SIZE;
        std::int32_t dstDelta = 0;  //!< destination offset adjustment
        NodeId dstNode = INVALID_NODE;
        Pid dstPid = 0;
        PageNum dstVpage = INVALID_PAGE;
        PageNum dstFrame = INVALID_PAGE;
        UpdateMode mode = UpdateMode::NONE;
        std::uint32_t flags = 0;
        bool invalidated = false;
        bool highSlot = false;  //!< which NIPT slot holds this half
    };

    /** Receiver-side record of one incoming mapping. */
    struct InRecord
    {
        Pid pid = 0;
        PageNum vpage = INVALID_PAGE;
        NodeId srcNode = INVALID_NODE;
        std::uint32_t flags = 0;
        bool pinned = false;
    };

    /**
     * Run the full map protocol for the MAP syscall: per destination
     * page, an RPC to the destination kernel, then local NIPT/page
     * table installation. @p done fires with err::OK or an errno.
     */
    void startMap(Process &proc, const MapArgs &args,
                  std::function<void(std::uint64_t)> done);

    /** Run the unmap protocol (reverse of startMap). */
    void startUnmap(Process &proc, const MapArgs &args,
                    std::function<void(std::uint64_t)> done);

    /** Source-side bookkeeping + NIPT install without the protocol
     *  (Kernel::mapDirect / boot wiring). */
    void recordOutDirect(OutRecord rec, PageNum local_frame);

    /**
     * Can a mapping half covering [begin, end) of @p frame still be
     * installed? False when both NIPT slots are taken or the new half
     * would overlap the existing one's coverage (the hardware allows
     * one split point per page, Section 3.2).
     */
    bool canInstallHalf(PageNum frame, Addr begin, Addr end) const;

    /** Receiver-side bookkeeping + NIPT install without protocol. */
    void recordInDirect(const InRecord &rec, PageNum frame,
                        bool arrival_interrupt);

    /**
     * Invalidate remote NIPT entries pointing at local @p frame (the
     * eviction shootdown). @p done fires when every source kernel has
     * acknowledged.
     */
    void shootdown(PageNum frame, std::function<void()> done);

    /** Does a write fault on (@p pid, @p vpage) belong to us? */
    bool needsRemap(Pid pid, PageNum vpage) const;

    /**
     * Re-establish all invalidated mappings of (@p proc, @p vpage);
     * fires @p done(err) when complete. The kernel restores write
     * permission and retries the faulting store on success.
     */
    void startRemap(Process &proc, PageNum vpage,
                    std::function<void(std::uint64_t)> done);

    /**
     * A kernel-channel page from @p peer received data; parse and
     * dispatch. Returns instructions of kernel work performed
     * (including any RPC-completion continuations run).
     */
    std::uint64_t handleChannelArrival(NodeId peer);

    /** Frame of (pid, vpage) changed (page-in): reinstall NIPT state
     *  for its active outgoing records. */
    void frameMoved(Pid pid, PageNum vpage, PageNum new_frame);

    /** Frame is being freed: clear all NIPT state attached to it. */
    void frameDropped(PageNum frame);

    /**
     * A process exited: remove its outgoing mappings from the local
     * NIPT and records, and return the local frames that still have
     * incoming mappings registered for it (the kernel shoots those
     * down so remote senders stop targeting a dead process).
     */
    std::vector<PageNum> cleanupProcess(Pid pid);

    /** Release the incoming-mapping state of one frame (post-
     *  shootdown): unpin per pinned record and clear the NIPT. */
    void releaseInMappings(PageNum frame);

    /** Does local @p frame have incoming mappings? */
    bool hasInMappings(PageNum frame) const;

    // ---- node-failure recovery (driven by Kernel::peerDied /
    //      peerRecovered / restart) ----

    /**
     * Peer @p peer was declared dead: drop every incoming-mapping
     * record it registered (unpinning frames and rebuilding NIPT
     * source lists). Data can no longer arrive from it, and a
     * rejoining peer must re-establish its mappings explicitly.
     *
     * @return records purged.
     */
    unsigned purgeDeadPeerIn(NodeId peer);

    /**
     * Drop every outgoing user mapping toward @p peer (its NIPT halves
     * were errored when the peer died). Called on peer recovery: the
     * application must re-map explicitly; kernel channel and NX wiring
     * are healed separately by the NI.
     *
     * @return records dropped.
     */
    unsigned purgeOutTo(NodeId peer);

    /**
     * Reset the RPC engine toward @p peer: in-flight and queued RPCs
     * complete with @p errno_ — err::HOSTDOWN for a dead peer,
     * err::STALE_EPOCH when the peer started a new life — waking any
     * blocked map()/unmap() callers, and sequence numbers restart from
     * scratch, matching a rejoining peer's fresh channel state.
     */
    void resetPeer(NodeId peer, std::uint64_t errno_ = err::HOSTDOWN);

    /**
     * Drop every pin held on behalf of incoming mappings. Used at
     * kernel teardown, before process address spaces return their
     * frames.
     */
    void releaseAllPins();

    /** Add kernel work to the current interrupt's accounting. */
    void addWork(std::uint64_t instructions) { _workAccum += instructions; }

    /** Queue an RPC on the shared kernel channel toward @p peer (the
     *  DSM service rides the same ordered, retransmitted path). */
    void postRpc(NodeId peer, KernelRpc rpc)
    {
        sendRpc(peer, std::move(rpc));
    }

    const std::vector<OutRecord> &outRecords() const { return _out; }
    const std::vector<InRecord> *inRecords(PageNum frame) const;

    std::uint64_t rpcsSent() const { return _rpcsSent; }
    std::uint64_t invalidationsReceived() const
    {
        return _invalidationsReceived;
    }
    std::uint64_t remapsCompleted() const { return _remaps; }

  private:
    struct PeerState
    {
        std::deque<KernelRpc> queue;
        bool inFlight = false;
        KernelRpc current;
        std::uint32_t nextSeq = 1;
        std::uint32_t lastReqSeen = 0;
        std::uint32_t lastRespSeen = 0;
    };

    void sendRpc(NodeId peer, KernelRpc rpc);
    void transmit(NodeId peer, PeerState &state);

    /** Stamp (incarnation, view-of-peer) into payload words [4],[5]
     *  of an outgoing record (no-op while health is off). */
    void stampPayload(NodeId peer, std::uint32_t *words) const;

    /** Write one record into our out channel to @p peer. */
    void writeRecord(NodeId peer, Addr rec_offset, std::uint32_t seq,
                     std::uint32_t type, const std::uint32_t *payload);

    std::uint32_t handleMapPage(NodeId peer, const std::uint32_t *p,
                                std::uint32_t *resp);
    std::uint32_t handleUnmapPage(NodeId peer, const std::uint32_t *p);
    std::uint32_t handleInvalidate(NodeId peer, const std::uint32_t *p);

    /**
     * Which NIPT slot a half covering [begin, end) would occupy:
     * false = low, true = high; nullopt if it cannot be installed.
     */
    std::optional<bool> slotForHalf(const NiptEntry &e, Addr begin,
                                    Addr end) const;

    /** Write one out-mapping half into the local NIPT; sets
     *  rec.highSlot to the slot used. */
    void installOutHalf(PageNum frame, OutRecord &rec);

    /** Clear one out-mapping half from the local NIPT. */
    void clearOutHalf(PageNum frame, const OutRecord &rec);

    /** Current local frame of (pid, vpage), or INVALID_PAGE. */
    PageNum frameOf(Pid pid, PageNum vpage) const;

    Kernel &_kernel;
    std::vector<PeerState> _peers;
    std::vector<OutRecord> _out;
    std::map<PageNum, std::vector<InRecord>> _inByFrame;

    std::uint64_t _workAccum = 0;
    std::uint64_t _rpcsSent = 0;
    std::uint64_t _invalidationsReceived = 0;
    std::uint64_t _remaps = 0;
};

} // namespace shrimp

#endif // SHRIMP_OS_MAP_MANAGER_HH
