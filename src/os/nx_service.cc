#include "os/nx_service.hh"

#include "os/kernel.hh"
#include "sim/logging.hh"

namespace shrimp
{

NxService::NxService(Kernel &kernel)
    : _kernel(kernel), _peers(kernel.numNodes())
{
    _kernel.ni().dma().onComplete = [this](Addr base) {
        dmaCompleted(base);
    };
}

// ---------------------------------------------------------------------
// Boot wiring
// ---------------------------------------------------------------------

void
NxService::allocatePages()
{
    for (NodeId peer = 0; peer < _peers.size(); ++peer) {
        if (peer == _kernel.nodeId())
            continue;
        PeerState &state = _peers[peer];
        auto alloc_pinned = [this]() {
            auto f = _kernel.frames().alloc();
            SHRIMP_ASSERT(f, "out of frames for NX buffers");
            _kernel.frames().pin(*f);
            return *f;
        };
        for (std::size_t i = 0; i < slotPages; ++i) {
            state.dataOut.push_back(alloc_pinned());
            PageNum in = alloc_pinned();
            state.dataIn.push_back(in);
            NiptEntry &e = _kernel.ni().nipt().entry(in);
            e.mappedIn = true;
            e.inSources.push_back(peer);
        }
        state.ctlOut = alloc_pinned();
        state.ctlIn = alloc_pinned();
        NiptEntry &e = _kernel.ni().nipt().entry(state.ctlIn);
        e.mappedIn = true;
        e.interruptOnArrival = true;
        e.inSources.push_back(peer);
        _ctlFrameOwner[state.ctlIn] = peer;
    }
}

PageNum
NxService::dataInFrame(NodeId peer, std::size_t page) const
{
    return _peers.at(peer).dataIn.at(page);
}

PageNum
NxService::ctlInFrame(NodeId peer) const
{
    return _peers.at(peer).ctlIn;
}

void
NxService::wireTo(NodeId peer, const std::vector<PageNum> &data_frames,
                  PageNum ctl_frame)
{
    PeerState &state = _peers.at(peer);
    SHRIMP_ASSERT(data_frames.size() == slotPages, "bad wire");
    for (std::size_t i = 0; i < slotPages; ++i) {
        OutMapping m;
        m.mode = UpdateMode::DELIBERATE;
        m.dstNode = peer;
        m.dstPage = data_frames[i];
        _kernel.ni().nipt().entry(state.dataOut[i]).outLow = m;
    }
    OutMapping c;
    c.mode = UpdateMode::AUTO_SINGLE;
    c.dstNode = peer;
    c.dstPage = ctl_frame;
    _kernel.ni().nipt().entry(state.ctlOut).outLow = c;
}

bool
NxService::ownsFrame(PageNum frame) const
{
    return _ctlFrameOwner.count(frame) != 0;
}

// ---------------------------------------------------------------------
// Control page access
// ---------------------------------------------------------------------

void
NxService::writeCtlWord(NodeId peer, Addr offset, std::uint32_t value)
{
    PeerState &state = _peers.at(peer);
    _kernel.charge(nullptr, _kernel.costs().channelWordWrite);
    Addr paddr = pageBase(state.ctlOut) + offset;
    _kernel.bus().postWrite(paddr, &value, 4, BusMaster::CPU,
                            _kernel.curTick());
}

std::uint32_t
NxService::readCtlWord(NodeId peer, Addr offset) const
{
    const PeerState &state = _peers.at(peer);
    return static_cast<std::uint32_t>(
        _kernel.mem().readInt(pageBase(state.ctlIn) + offset, 4));
}

// ---------------------------------------------------------------------
// csend
// ---------------------------------------------------------------------

std::optional<Tick>
NxService::csend(ExecContext &ctx, const NxArgs &args, Tick now)
{
    // The NX/2 fast path: 222 instructions of kernel send processing.
    Tick t = now + _kernel.charge(&ctx, _kernel.costs().nxCsendFastPath);

    if (args.nbytes == 0 || args.nbytes > maxMessageBytes ||
        args.node >= _peers.size() || args.node == _kernel.nodeId()) {
        ctx.regs[R0] = err::INVAL;
        return t;
    }

    Process &proc = _kernel.processOf(ctx);
    PeerState &peer = _peers[args.node];

    // Admission control: refuse up front -- before the process blocks
    // -- when the destination is unhealthy or its send queue is at the
    // bound. EAGAIN-style: the caller sees WOULDBLOCK immediately
    // instead of parking on a queue that can only grow.
    const AdmissionParams &adm = _kernel.admission();
    if (adm.enabled &&
        (!_kernel.sendAdmissible(args.node) ||
         peer.sendWaiters.size() >= adm.maxQueuedSendsPerPeer)) {
        _kernel.countSendRejected();
        ctx.regs[R0] = err::WOULDBLOCK;
        return t;
    }

    _kernel.blockCurrent(ctx);
    auto next = _kernel.scheduleNext(t);

    if (!slotFree(peer)) {
        peer.sendWaiters.push_back(BlockedSender{&proc, args});
    } else {
        beginTransfer(proc, args);
    }
    return next;
}

void
NxService::beginTransfer(Process &proc, const NxArgs &args)
{
    PeerState &peer = _peers[args.node];
    SHRIMP_ASSERT(slotFree(peer), "transfer with slot busy");
    peer.sendInProgress = true;

    // Copy user data into the kernel send buffer -- the user/kernel
    // copy the SHRIMP design eliminates.
    std::uint32_t words = (args.nbytes + 3) / 4;
    _kernel.charge(&proc.ctx, _kernel.costs().nxCopyPerWord * words);
    Addr copied = 0;
    while (copied < args.nbytes) {
        Addr chunk = PAGE_SIZE - pageOffset(args.buf + copied);
        if (chunk > args.nbytes - copied)
            chunk = args.nbytes - copied;
        Translation tr =
            proc.space().translate(args.buf + copied, false);
        SHRIMP_ASSERT(tr.ok(), "csend buffer not mapped");
        std::vector<std::uint8_t> tmp(chunk);
        _kernel.mem().read(tr.paddr, tmp.data(), chunk);
        Addr dst_page = copied / PAGE_SIZE;
        _kernel.mem().write(pageBase(peer.dataOut[dst_page]) +
                                pageOffset(copied),
                            tmp.data(), chunk);
        copied += chunk;
    }

    peer.xfer = TransferState{};
    peer.xfer.active = true;
    peer.xfer.proc = &proc;
    peer.xfer.node = args.node;
    peer.xfer.type = args.type;
    peer.xfer.nbytes = args.nbytes;
    peer.xfer.page = 0;
    startNextDmaPage(args.node);
}

void
NxService::startNextDmaPage(NodeId node)
{
    PeerState &peer = _peers[node];
    TransferState &xfer = peer.xfer;
    SHRIMP_ASSERT(xfer.active, "DMA page with no transfer");

    Addr offset = Addr{xfer.page} * PAGE_SIZE;
    Addr bytes = xfer.nbytes - offset;
    if (bytes > PAGE_SIZE)
        bytes = PAGE_SIZE;
    std::uint32_t nwords =
        static_cast<std::uint32_t>((bytes + 3) / 4);
    Addr src = pageBase(peer.dataOut[xfer.page]);

    if (!_kernel.ni().dma().start(src, nwords)) {
        // Engine claimed by a user-level deliberate transfer; retry.
        xfer.pendingBase = 0;
        _kernel.eventQueue().scheduleFn(
            [this, node] { startNextDmaPage(node); },
            _kernel.curTick() + 2 * ONE_US, EventPriority::DEFAULT,
            "nx dma retry");
        return;
    }
    xfer.pendingBase = src;
}

void
NxService::dmaCompleted(Addr base)
{
    for (NodeId node = 0; node < _peers.size(); ++node) {
        PeerState &peer = _peers[node];
        if (!peer.xfer.active || peer.xfer.pendingBase != base)
            continue;
        // The "DMA send interrupt" of the traditional architecture.
        _kernel.cpu().postInterrupt([this, node](Tick now) {
            Tick t = now + _kernel.charge(
                               nullptr, _kernel.costs().nxInterrupt);
            PeerState &p = _peers[node];
            if (!p.xfer.active)
                return t;
            Addr sent = Addr{p.xfer.page + 1} * PAGE_SIZE;
            if (sent < p.xfer.nbytes) {
                p.xfer.page++;
                startNextDmaPage(node);
            } else {
                finishSend(node);
            }
            return t;
        });
        return;
    }
}

void
NxService::finishSend(NodeId node)
{
    PeerState &peer = _peers[node];
    TransferState xfer = peer.xfer;
    peer.xfer = TransferState{};

    // Ring the doorbell: nbytes and type first, the sequence last.
    std::uint32_t seq = ++peer.sendSeq;
    writeCtlWord(node, ctlNbytes, xfer.nbytes);
    writeCtlWord(node, ctlType, xfer.type);
    writeCtlWord(node, ctlDoorbellSeq, seq);
    peer.sendInProgress = false;
    ++_sent;

    xfer.proc->ctx.regs[R0] = err::OK;
    _kernel.makeReady(*xfer.proc);
}

// ---------------------------------------------------------------------
// crecv and delivery
// ---------------------------------------------------------------------

std::optional<Tick>
NxService::crecv(ExecContext &ctx, const NxArgs &args, Tick now)
{
    // The NX/2 receive fast path: 261 instructions.
    Tick t = now + _kernel.charge(&ctx, _kernel.costs().nxCrecvFastPath);

    Process &proc = _kernel.processOf(ctx);

    // A message of this type already queued?
    for (NodeId from = 0; from < _peers.size(); ++from) {
        PeerState &peer = _peers[from];
        if (peer.pending && peer.pending->type == args.type) {
            std::uint64_t work = deliverTo(from, proc, args.buf);
            return t + _kernel.charge(&ctx, work);
        }
    }

    _kernel.blockCurrent(ctx);
    auto next = _kernel.scheduleNext(t);
    _blockedReceivers.push_back(
        BlockedReceiver{&proc, args.type, args.buf});
    return next;
}

std::uint64_t
NxService::handleArrival(NodeId, PageNum frame)
{
    auto it = _ctlFrameOwner.find(frame);
    SHRIMP_ASSERT(it != _ctlFrameOwner.end(), "NX arrival on unknown "
                  "frame ", frame);
    NodeId peer_id = it->second;
    PeerState &peer = _peers[peer_id];
    std::uint64_t work = 0;

    // New doorbell? (the DMA receive interrupt of the traditional
    // architecture)
    std::uint32_t seq = readCtlWord(peer_id, ctlDoorbellSeq);
    if (seq != 0 && seq != peer.recvSeqSeen) {
        peer.recvSeqSeen = seq;
        work += _kernel.costs().nxInterrupt;
        PendingMessage msg;
        msg.from = peer_id;
        msg.type = readCtlWord(peer_id, ctlType);
        msg.nbytes = readCtlWord(peer_id, ctlNbytes);
        SHRIMP_ASSERT(!peer.pending, "NX slot protocol violated");
        peer.pending = msg;
        work += tryDeliver(peer_id);
    }

    // Credit returned for a message we sent?
    std::uint32_t credit = readCtlWord(peer_id, ctlCreditSeq);
    if (credit != peer.creditSeen) {
        peer.creditSeen = credit;
        work += _kernel.costs().nxInterrupt;
        if (!peer.sendWaiters.empty() && slotFree(peer)) {
            BlockedSender sender = std::move(peer.sendWaiters.front());
            peer.sendWaiters.pop_front();
            beginTransfer(*sender.proc, sender.args);
        }
    }
    return work;
}

std::uint64_t
NxService::tryDeliver(NodeId from)
{
    PeerState &peer = _peers[from];
    if (!peer.pending)
        return 0;
    for (auto it = _blockedReceivers.begin();
         it != _blockedReceivers.end(); ++it) {
        if (it->type == peer.pending->type) {
            Process *proc = it->proc;
            Addr buf = it->buf;
            _blockedReceivers.erase(it);
            return deliverTo(from, *proc, buf);
        }
    }
    return 0;   // stays queued until someone calls crecv
}

std::uint64_t
NxService::deliverTo(NodeId from, Process &proc, Addr buf)
{
    PeerState &peer = _peers[from];
    SHRIMP_ASSERT(peer.pending, "deliver with no message");
    PendingMessage msg = *peer.pending;
    peer.pending.reset();

    // Kernel -> user copy, the receive side's extra copy.
    Addr copied = 0;
    while (copied < msg.nbytes) {
        Addr chunk = PAGE_SIZE - pageOffset(buf + copied);
        if (chunk > msg.nbytes - copied)
            chunk = msg.nbytes - copied;
        Translation tr = proc.space().translate(buf + copied, true);
        SHRIMP_ASSERT(tr.ok(), "crecv buffer not mapped");
        std::vector<std::uint8_t> tmp(chunk);
        _kernel.mem().read(pageBase(peer.dataIn[copied / PAGE_SIZE]) +
                               pageOffset(copied),
                           tmp.data(), chunk);
        _kernel.mem().write(tr.paddr, tmp.data(), chunk);
        copied += chunk;
    }

    // Return the slot credit to the sender's kernel.
    writeCtlWord(from, ctlCreditSeq, peer.recvSeqSeen);

    proc.ctx.regs[R0] = msg.nbytes;
    _kernel.makeReady(proc);
    ++_delivered;

    return _kernel.costs().nxCopyPerWord * ((msg.nbytes + 3) / 4) +
           _kernel.costs().nxInterrupt;
}

} // namespace shrimp
