/**
 * @file
 * Kernel: the per-node operating system.
 *
 * Responsibilities, mirroring the paper's system design:
 *  - processes and general multiprogramming (round-robin scheduler
 *    with preemption; the paper's design explicitly supports arbitrary
 *    scheduling policies because protection lives in the mapping);
 *  - the map()/unmap() syscalls: protection checking and NIPT setup,
 *    performed via kernel-to-kernel RPC over an in-band channel (a
 *    pair of boot-time automatic-update mappings per node pair with
 *    interrupt-on-arrival set);
 *  - NIPT consistency (Section 4.4): PIN policy (mapped-in frames are
 *    pinned) or INVALIDATE policy (TLB-shootdown-style invalidation of
 *    remote NIPT entries before paging, with page faults re-
 *    establishing invalidated mappings on demand);
 *  - interrupt handling: packet-arrival interrupts (kernel channel and
 *    user WAIT_ARRIVAL) and the outgoing-FIFO threshold interrupt that
 *    stalls the CPU until the FIFO drains;
 *  - the NX/2 kernel-level baseline (csend/crecv through kernel
 *    buffers with syscalls, copies and per-message interrupts), used
 *    for the paper's overhead comparison.
 *
 * All kernel work is charged to the CPU in instructions, so software
 * overheads of kernel-mediated paths are measured in the same units as
 * the user-level primitives of Table 1.
 */

#ifndef SHRIMP_OS_KERNEL_HH
#define SHRIMP_OS_KERNEL_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cpu/cpu.hh"
#include "nic/shrimp_ni.hh"
#include "os/health.hh"
#include "os/process.hh"
#include "os/syscalls.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "vm/frame_allocator.hh"

namespace shrimp
{

class Dsm;
struct DsmConfig;
class MapManager;
class NxService;

/** How the kernel keeps remote NIPTs consistent with local paging. */
enum class ConsistencyPolicy : std::uint8_t
{
    PIN,            //!< pin mapped-in frames; eviction refused
    INVALIDATE,     //!< shoot down remote NIPT entries, then evict
};

/**
 * Scheduling policy. The SHRIMP hardware supports arbitrary
 * multiprogramming, so the choice is purely a performance experiment
 * (unlike the CM-5, whose protection requires gang scheduling).
 */
enum class SchedPolicy : std::uint8_t
{
    ROUND_ROBIN,    //!< preemptive round robin over all processes
    GANG,           //!< only the current gang's processes run
};

/**
 * Kernel-level send admission control (overload protection). With
 * admission on, sends toward an overloaded or unhealthy peer fail
 * fast with err::WOULDBLOCK instead of queueing without bound: the
 * caller sheds load at the source, which is what keeps an incast from
 * collapsing into unbounded kernel queues.
 */
struct AdmissionParams
{
    bool enabled = false;
    /** Bound on NX blocked senders queued per destination. */
    unsigned maxQueuedSendsPerPeer = 16;
    /** Refuse sends toward peers the failure detector calls SUSPECT
     *  (or worse) instead of racing the death timeout. */
    bool rejectSuspectPeers = true;
    /** Refuse sends once the reliability window toward the peer has
     *  been continuously full this long; 0 = ignore window fullness. */
    Tick windowFullAfter = 0;
};

/** The per-node kernel. */
class Kernel : public SimObject, public TrapHandler
{
  public:
    struct Costs
    {
        std::uint64_t contextSwitch = 80;
        std::uint64_t syscallDispatch = 20;
        std::uint64_t mapValidatePerPage = 90;  //!< source-side checks
        std::uint64_t mapInstallPerPage = 40;   //!< NIPT/PT writes
        std::uint64_t mapRemotePerPage = 110;   //!< receiver-side work
        std::uint64_t channelWordWrite = 3;
        std::uint64_t arrivalInterrupt = 30;
        std::uint64_t rpcDispatch = 40;
        std::uint64_t faultHandler = 80;
        std::uint64_t pageSwap = 400;           //!< evict or page-in
        std::uint64_t nxCsendFastPath = 222;    //!< iPSC/2 NX/2 numbers
        std::uint64_t nxCrecvFastPath = 261;
        std::uint64_t nxInterrupt = 90;
        std::uint64_t nxCopyPerWord = 1;
        Tick quantum = 1 * ONE_MS;
    };

    Kernel(EventQueue &eq, std::string name, NodeId node,
           unsigned num_nodes, Cpu &cpu, MainMemory &mem, XpressBus &bus,
           ShrimpNi &ni, const Costs &costs);
    ~Kernel() override;

    NodeId nodeId() const { return _node; }
    unsigned numNodes() const { return _numNodes; }
    const Costs &costs() const { return _costs; }
    Cpu &cpu() { return _cpu; }
    MainMemory &mem() { return _mem; }
    XpressBus &bus() { return _bus; }
    ShrimpNi &ni() { return _ni; }
    FrameAllocator &frames() { return _frames; }
    MapManager &mapManager() { return *_mapManager; }
    NxService &nxService() { return *_nxService; }

    /** Create the DSM service (before allocateChannels-time wiring). */
    void enableDsm(const DsmConfig &cfg);

    /** The DSM service, or nullptr unless enableDsm ran. */
    Dsm *dsm() { return _dsm.get(); }

    /** Dispatch a DSM RPC from the kernel channel; err::INVAL when
     *  the type is unknown or the DSM service is off. */
    std::uint32_t dsmRpc(NodeId peer, std::uint32_t type,
                         const std::uint32_t *payload,
                         std::uint32_t *resp);

    void
    setConsistencyPolicy(ConsistencyPolicy policy)
    {
        _consistency = policy;
    }
    ConsistencyPolicy consistencyPolicy() const { return _consistency; }

    void setSchedPolicy(SchedPolicy policy) { _schedPolicy = policy; }
    SchedPolicy schedPolicy() const { return _schedPolicy; }

    /**
     * Gang scheduling: make @p gang the runnable gang. Preempts a
     * running process of another gang and dispatches a member of the
     * new one (a GangCoordinator calls this on every node at the same
     * tick).
     */
    void setCurrentGang(std::uint32_t gang);
    std::uint32_t currentGang() const { return _currentGang; }

    // ---- processes ----

    /** Create a process (READY once a program is loaded). */
    Process *createProcess(const std::string &name);

    Process *findProcess(Pid pid);

    /**
     * Load @p program into @p proc with a fresh stack and enqueue it
     * for scheduling.
     */
    void loadAndReady(Process &proc,
                      std::shared_ptr<const Program> program,
                      std::size_t stack_pages = 4);

    /** Begin scheduling (call once after processes are ready). */
    void start();

    bool allProcessesExited() const;

    // ---- boot-time wiring (called by ShrimpSystem) ----

    /** Allocate per-peer kernel channel pages. */
    void allocateChannels();

    /** Local frame that receives peer @p peer's kernel channel. */
    PageNum channelInFrame(NodeId peer) const;

    /** Wire our outgoing channel to @p peer's mapped-in frame. */
    void wireChannelOut(NodeId peer, PageNum remote_frame);

    // ---- liveness and node-failure recovery ----

    /**
     * Turn on the heartbeat-based failure detector: periodic
     * keepalives to every peer, silence-driven SUSPECT/DEAD
     * transitions, and full mapping teardown/recovery wired into the
     * peerDead/peerRecovered hooks.
     */
    void enableHealth(const HealthParams &params);

    /** The failure detector, or nullptr unless enableHealth ran. */
    HealthMonitor *health() { return _health.get(); }

    /** This node's current life number (1 when health is off). */
    std::uint32_t selfIncarnation() const;

    /** Last observed incarnation of @p peer (0 = unknown/health off). */
    std::uint32_t peerIncarnation(NodeId peer) const;

    /** A layer fenced a stale-epoch message itself: route the drop
     *  into health's staleEpochRejects accounting. */
    void noteFencedDrop();

    /**
     * Peer @p peer started a new life (incarnation @p inc): everything
     * bound to its previous life is stale. In-flight RPCs toward it
     * fail with err::STALE_EPOCH, the reliability channel restarts,
     * and the DSM re-homes pages its old life owned.
     */
    void peerEpochChanged(NodeId peer, std::uint32_t inc);

    /**
     * Peer @p peer is dead (heartbeat timeout or retransmit-cap
     * evidence): error every NIPT mapping half toward it, abort
     * in-flight deliberate DMA targeting it, drop its incoming
     * mappings, and fail in-flight kernel RPCs with err::HOSTDOWN.
     * Unrelated traffic keeps flowing. Idempotent.
     */
    void peerDied(NodeId peer);

    /**
     * A DEAD peer spoke again: clear its failed status, reset the
     * reliability channel and RPC sequence state, heal kernel channel
     * and NX wiring toward it, and drop errored user mappings so the
     * application can re-map explicitly.
     */
    void peerRecovered(NodeId peer);

    /**
     * Power-fail this node: the CPU stops (the running process is
     * parked back on the ready queue), the failure detector pauses,
     * and pending quantum events die. The NI is crashed separately by
     * ShrimpSystem::crashNode, which calls both.
     */
    void crash();

    /** Undo crash(): reset per-peer protocol state (in-flight RPCs
     *  fail with err::HOSTDOWN), resume heartbeating and scheduling. */
    void restart();

    bool crashed() const { return _crashed; }

    // ---- host-level (zero-cost) mapping, for tests and hardware
    //      benches that must not include protocol costs ----

    /**
     * Establish outgoing mappings directly in both NIPTs, page
     * granular, without the kernel protocol and without simulated
     * cost. Both kernels' bookkeeping is still updated so unmap and
     * consistency work.
     *
     * @return err::OK or an errno.
     */
    std::uint64_t mapDirect(Process &src_proc, Addr src_vaddr,
                            std::size_t npages, Kernel &dst_kernel,
                            Process &dst_proc, Addr dst_vaddr,
                            UpdateMode mode,
                            bool arrival_interrupt = false);

    /**
     * Byte-granular variant supporting non-page-aligned mappings via
     * the NIPT page-split mechanism (Section 3.2). @p nbytes of
     * source starting at src_vaddr map to dst_vaddr; offsets within a
     * page may differ between source and destination.
     */
    std::uint64_t mapDirectRange(Process &src_proc, Addr src_vaddr,
                                 Addr nbytes, Kernel &dst_kernel,
                                 Process &dst_proc, Addr dst_vaddr,
                                 UpdateMode mode,
                                 bool arrival_interrupt = false);

    /**
     * Map the command pages controlling @p proc's pages at
     * [vaddr, vaddr + npages*PAGE_SIZE) into the process's address
     * space (Section 4.2: the kernel grants a process access to the
     * command pages of physical pages it owns).
     *
     * @return the base virtual address of the command window.
     */
    Addr mapCommandPages(Process &proc, Addr vaddr, std::size_t npages);

    // ---- paging (host/test driven; async under INVALIDATE) ----

    /**
     * Evict the page backing (@p proc, @p vaddr): saves contents to
     * swap, invalidates remote NIPT entries per the consistency
     * policy, releases the frame. @p done fires with success=false if
     * the policy forbids eviction (PIN + pinned).
     */
    void evictUserPage(Process &proc, Addr vaddr,
                       std::function<void(bool)> done);

    /** Page a previously evicted page back in (allocates a frame). */
    std::uint64_t pageIn(Process &proc, PageNum vpage);

    /**
     * Reap a process: tear down all of its mappings. Outgoing NIPT
     * entries are cleared immediately; frames with incoming mappings
     * are shot down (remote kernels invalidate their senders' NIPT
     * entries) and released. Remote remap attempts targeting a reaped
     * process are refused. Exited-but-unreaped processes keep their
     * memory and mappings, so late-arriving data still lands.
     */
    void reapProcess(Process &proc);

    /** True if (proc, vpage) currently lives in swap. */
    bool inSwap(Pid pid, PageNum vpage) const;

    // ---- TrapHandler ----
    std::optional<Tick> syscall(ExecContext &ctx, std::uint64_t num,
                                Tick now) override;
    std::optional<Tick> fault(ExecContext &ctx, FaultKind kind,
                              Addr vaddr, bool write, Tick now) override;
    void halted(ExecContext &ctx, Tick now) override;

    // ---- services used by MapManager / NxService ----

    /** Charge kernel instructions; returns the busy duration. */
    Tick charge(ExecContext *ctx, std::uint64_t instructions);

    /** Write one word into our outgoing channel page to @p peer. */
    void writeChannelWord(NodeId peer, Addr offset, std::uint32_t value);

    /** Functional read of a word from our channel-in page of @p peer. */
    std::uint32_t readChannelWord(NodeId peer, Addr offset) const;

    /** Block the process owning @p ctx (must be the running one). */
    void blockCurrent(ExecContext &ctx);

    /** Make @p proc runnable; dispatches if the CPU is idle. */
    void makeReady(Process &proc);

    /** Process that owns @p ctx. */
    Process &processOf(ExecContext &ctx);

    /** Arrival count for a user frame (WAIT_ARRIVAL bookkeeping). */
    std::uint64_t arrivalCount(PageNum frame) const;

    std::uint64_t contextSwitches() const { return _switches.value(); }

    /** Mapping halves errored by the NI reliability layer (retry-cap
     *  exhaustion toward an unreachable peer). */
    std::uint64_t mappingErrors() const { return _mappingErrors.value(); }

    /** Has the reliability layer declared @p peer unreachable? */
    bool
    peerFailed(NodeId peer) const
    {
        return _failedPeers.count(peer) != 0;
    }

    // ---- send admission control ----

    void setAdmission(const AdmissionParams &params)
    {
        _admission = params;
    }
    const AdmissionParams &admission() const { return _admission; }

    /**
     * May a new send toward @p peer be admitted right now? False when
     * admission control is on and the peer is SUSPECT/DEAD or its
     * reliability window has been full past windowFullAfter. Callers
     * should fail the operation with err::WOULDBLOCK (and charge
     * countSendRejected()) rather than queue it.
     */
    bool sendAdmissible(NodeId peer) const;

    /** Record one admission-control rejection. */
    void countSendRejected() { ++_sendsRejected; }

    /** Sends refused with err::WOULDBLOCK by admission control. */
    std::uint64_t sendsRejected() const
    {
        return _sendsRejected.value();
    }

    std::uint64_t fifoStalls() const { return _fifoStalls.value(); }
    Tick fifoStallTicks() const
    {
        return static_cast<Tick>(_fifoStallTicks.value());
    }
    stats::Group &statGroup() { return _stats; }

  private:
    friend class MapManager;
    friend class NxService;

    /** Pick and install the next READY process. */
    std::optional<Tick> scheduleNext(Tick now);



    /** Arrival interrupt bottom half (runs on the CPU). */
    Tick arrivalHandler(PageNum page, Tick now);

    /** Outgoing-FIFO threshold handling (Section 4 flow control). */
    void outFifoFull();
    void outFifoDrained();

    /** Preemption timer. */
    void armQuantum(Process &proc);
    void quantumExpired();

    std::optional<Tick> doMapSyscall(ExecContext &ctx, Tick now);
    std::optional<Tick> doUnmapSyscall(ExecContext &ctx, Tick now);
    std::optional<Tick> doWaitArrival(ExecContext &ctx, Tick now);

    /** Read a MapArgs block from user memory. */
    bool readUserWords(ExecContext &ctx, Addr vaddr, std::uint32_t *out,
                       unsigned nwords) const;

    NodeId _node;
    unsigned _numNodes;
    Cpu &_cpu;
    MainMemory &_mem;
    XpressBus &_bus;
    ShrimpNi &_ni;
    Costs _costs;
    FrameAllocator _frames;
    ConsistencyPolicy _consistency = ConsistencyPolicy::PIN;
    SchedPolicy _schedPolicy = SchedPolicy::ROUND_ROBIN;
    std::uint32_t _currentGang = 0;

    std::vector<std::unique_ptr<Process>> _processes;
    std::deque<Process *> _readyQueue;
    Process *_running = nullptr;
    Pid _nextPid = 1;

    // Kernel channel state: one in/out frame per peer.
    std::vector<PageNum> _channelIn;    //!< indexed by peer node id
    std::vector<PageNum> _channelOut;
    std::unordered_map<PageNum, NodeId> _channelPeerOfFrame;

    // WAIT_ARRIVAL bookkeeping.
    std::unordered_map<PageNum, std::uint64_t> _arrivalCount;
    std::unordered_map<PageNum, std::vector<Process *>> _arrivalWaiters;

    // Swap storage: (pid, vpage) -> saved contents + attributes.
    struct SwapEntry
    {
        std::vector<std::uint8_t> data;
        Pte pte;    //!< attributes to restore (frame field unused)
    };
    std::map<std::pair<Pid, PageNum>, SwapEntry> _swap;

    bool _stalledOnOutFifo = false;
    Tick _stallStart = 0;
    EventFunctionWrapper _quantumEvent;
    Process *_quantumTarget = nullptr;

    std::unique_ptr<MapManager> _mapManager;
    std::unique_ptr<NxService> _nxService;
    std::unique_ptr<Dsm> _dsm;
    std::unique_ptr<HealthMonitor> _health;
    AdmissionParams _admission;
    bool _crashed = false;

    stats::Group _stats;
    stats::Counter _switches{"contextSwitches", "context switches"};
    stats::Counter _interruptCount{"interrupts",
                                   "arrival interrupts handled"};
    stats::Counter _fifoStalls{"fifoStalls",
                               "outgoing-FIFO threshold stalls"};
    stats::Counter _fifoStallTicks{"fifoStallTicks",
                                   "ticks stalled on outgoing FIFO"};
    stats::Counter _pageEvictions{"pageEvictions", "pages evicted"};
    stats::Counter _pageIns{"pageIns", "pages brought back from swap"};
    stats::Counter _mappingErrors{
        "mappingErrors",
        "mapping halves errored by the reliability layer"};
    stats::Counter _crashes{"crashes", "node crash events"};
    stats::Counter _restarts{"restarts", "node restart events"};
    stats::Counter _sendsRejected{
        "sendsRejected", "sends refused by admission control"};

    /** Peers declared unreachable by the NI reliability layer. */
    std::set<NodeId> _failedPeers;
};

} // namespace shrimp

#endif // SHRIMP_OS_KERNEL_HH
