/**
 * @file
 * Process: one schedulable user process on a node.
 */

#ifndef SHRIMP_OS_PROCESS_HH
#define SHRIMP_OS_PROCESS_HH

#include <memory>
#include <string>

#include "cpu/exec_context.hh"
#include "vm/address_space.hh"

namespace shrimp
{

enum class ProcState : std::uint8_t
{
    READY,
    RUNNING,
    BLOCKED,
    EXITED,
};

const char *procStateName(ProcState s);

/** A user process: context + address space + scheduling state. */
class Process
{
  public:
    Process(Pid pid, std::string name, FrameAllocator &frames)
        : _space(frames)
    {
        ctx.pid = pid;
        ctx.name = std::move(name);
        ctx.space = &_space;
    }

    Pid pid() const { return ctx.pid; }
    const std::string &name() const { return ctx.name; }
    AddressSpace &space() { return _space; }

    /** Load a program and initialize the stack. */
    void
    load(std::shared_ptr<const Program> program, Addr stack_top)
    {
        ctx.program = std::move(program);
        ctx.pc = 0;
        ctx.halted = false;
        ctx.regs[SP] = stack_top;
    }

    /** Allocate user memory in this process's space. */
    Addr
    allocate(std::size_t npages,
             CachePolicy policy = CachePolicy::WRITE_BACK,
             bool writable = true)
    {
        return _space.allocate(npages, policy, writable);
    }

    ExecContext ctx;
    ProcState state = ProcState::READY;

    /**
     * Parallel-job (gang) identity for gang scheduling. Under the
     * default round-robin policy this is ignored -- the SHRIMP design
     * point is precisely that protection does not depend on
     * scheduling, so any policy works (Sections 1-2).
     */
    std::uint32_t gangId = 0;

    /** The kernel tore down this process's mappings (see
     *  Kernel::reapProcess); remote maps to it are refused. */
    bool reaped = false;

    /** While blocked in WAIT_ARRIVAL: the frame being waited on. */
    PageNum waitFrame = INVALID_PAGE;

  private:
    AddressSpace _space;
};

} // namespace shrimp

#endif // SHRIMP_OS_PROCESS_HH
