/**
 * @file
 * Fault-driven stencil over the DSM window: a 1-D odd-even (red-black)
 * relaxation where two nodes co-operate on one shared array through
 * nothing but loads and stores. Node A updates the even interior cells
 * from their neighbours, node B the odd ones; a per-round flag
 * handshake (also in shared memory) alternates the half-sweeps.
 *
 * Every cross-node access is a page fault the DSM service turns into
 * VMMC traffic: A's updates write-fault the array page away from B,
 * B's flag spin read-faults it back read-shared, and so on. The final
 * array must match a host-side replay of the same relaxation -- a
 * wrong or lost writeback anywhere in the protocol shows up as a
 * cell mismatch.
 *
 * Run: ./dsm_stencil
 */

#include <cstdio>

#include "core/system.hh"
#include "os/dsm.hh"

using namespace shrimp;

namespace
{

constexpr unsigned kCells = 16;     // 1-D grid, ends held fixed
constexpr unsigned kRounds = 3;

/** Read one word of a DSM page from any node holding a copy. */
std::uint32_t
peekDsm(ShrimpSystem &sys, std::uint32_t page, unsigned byte_off)
{
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        Dsm &d = *sys.kernel(id).dsm();
        if (d.localState(page) != DsmPageState::INVALID) {
            return static_cast<std::uint32_t>(sys.node(id).mem.readInt(
                pageBase(d.localFrame(page)) + byte_off, 4));
        }
    }
    return 0xdead'dead;
}

} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.dsm.enabled = true;
    cfg.dsm.numPages = 4;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("even");
    Process *b = sys.kernel(1).createProcess("odd");
    sys.kernel(0).dsm()->attach(*a);
    sys.kernel(1).dsm()->attach(*b);

    const Addr base = cfg.dsm.baseVaddr;
    const Addr flag_a_off = 4 * kCells;       // A's completed round
    const Addr flag_b_off = 4 * kCells + 4;   // B's completed round

    // Node A: initialise the grid, then each round relax the even
    // interior cells, publish the round number and wait for B's
    // half-sweep before continuing.
    Program pa("even-sweep");
    pa.movi(R1, base);
    for (unsigned j = 0; j < kCells; ++j)
        pa.sti(R1, 4 * j, j, 4);
    for (unsigned r = 1; r <= kRounds; ++r) {
        for (unsigned j = 2; j + 1 < kCells; j += 2) {
            pa.ld(R2, R1, 4 * (j - 1), 4);
            pa.ld(R3, R1, 4 * (j + 1), 4);
            pa.add(R2, R3);
            pa.st(R1, 4 * j, R2, 4);
        }
        pa.sti(R1, flag_a_off, r, 4);
        pa.label("waitB" + std::to_string(r));
        pa.ld(R2, R1, flag_b_off, 4);
        pa.cmpi(R2, r);
        pa.jnz("waitB" + std::to_string(r));
    }
    pa.halt();
    pa.finalize();

    // Node B: wait for A's half-sweep, relax the odd interior cells
    // (Gauss-Seidel: it sees A's fresh values), publish.
    Program pb("odd-sweep");
    pb.movi(R1, base);
    for (unsigned r = 1; r <= kRounds; ++r) {
        pb.label("waitA" + std::to_string(r));
        pb.ld(R2, R1, flag_a_off, 4);
        pb.cmpi(R2, r);
        pb.jnz("waitA" + std::to_string(r));
        for (unsigned j = 1; j + 1 < kCells; j += 2) {
            pb.ld(R2, R1, 4 * (j - 1), 4);
            pb.ld(R3, R1, 4 * (j + 1), 4);
            pb.add(R2, R3);
            pb.st(R1, 4 * j, R2, 4);
        }
        pb.sti(R1, flag_b_off, r, 4);
    }
    pb.halt();
    pb.finalize();

    sys.kernel(0).loadAndReady(*a,
                               std::make_shared<Program>(std::move(pa)));
    sys.kernel(1).loadAndReady(*b,
                               std::make_shared<Program>(std::move(pb)));
    sys.startAll();
    bool done = sys.runUntilAllExited(5 * ONE_SEC);
    sys.runFor(ONE_MS);

    // Host-side replay of the same relaxation.
    std::uint32_t model[kCells];
    for (unsigned j = 0; j < kCells; ++j)
        model[j] = j;
    for (unsigned r = 0; r < kRounds; ++r) {
        for (unsigned j = 2; j + 1 < kCells; j += 2)
            model[j] = model[j - 1] + model[j + 1];
        for (unsigned j = 1; j + 1 < kCells; j += 2)
            model[j] = model[j - 1] + model[j + 1];
    }

    unsigned mismatches = 0;
    for (unsigned j = 0; j < kCells; ++j) {
        std::uint32_t got = peekDsm(sys, 0, 4 * j);
        if (got != model[j]) {
            std::printf("  cell[%u] = %u, expected %u\n", j, got,
                        model[j]);
            ++mismatches;
        }
    }

    std::uint64_t faults = 0, invals = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        faults += sys.kernel(id).dsm()->faults();
        invals += sys.kernel(id).dsm()->invalidations();
    }

    std::printf("odd-even relaxation, %u cells x %u rounds over DSM\n",
                kCells, kRounds);
    std::printf("  faults: %llu  invalidations: %llu\n",
                (unsigned long long)faults, (unsigned long long)invals);
    bool ok = done && mismatches == 0 && faults > 0;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
