/**
 * @file
 * Multiprogramming: two independent parallel jobs timeshare the same
 * two-node machine. Because protection lives in the mappings (set up
 * once by map()) rather than in scheduling, the jobs' communications
 * interleave freely under preemptive round-robin scheduling with no
 * gang scheduling and no cross-talk -- the design property the paper
 * contrasts with the CM-5 (Sections 1-2).
 *
 * Job "ping" ping-pongs a counter via automatic update. Job "bulk"
 * pushes deliberate-update block transfers through the shared DMA
 * engine (claimed with the atomic CMPXCHG protocol, which is exactly
 * what makes it safe under arbitrary context switches).
 *
 * Run: ./multiprogramming
 */

#include <cstdio>

#include "core/system.hh"
#include "msg/deliberate.hh"

using namespace shrimp;

int
main()
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.kernel.quantum = 50 * ONE_US;   // aggressive timesharing
    ShrimpSystem sys(cfg);

    // ---- job 1: ping-pong (one process per node) ----
    Process *ping = sys.kernel(0).createProcess("ping");
    Process *pong = sys.kernel(1).createProcess("pong");
    Addr pflag0 = ping->allocate(1);
    Addr pflag1 = pong->allocate(1);
    sys.kernel(0).mapDirect(*ping, pflag0, 1, sys.kernel(1), *pong,
                            pflag1, UpdateMode::AUTO_SINGLE);
    sys.kernel(1).mapDirect(*pong, pflag1, 1, sys.kernel(0), *ping,
                            pflag0, UpdateMode::AUTO_SINGLE);

    constexpr int kRounds = 60;
    {
        Program p("ping");
        p.movi(R6, pflag0);
        p.movi(R5, 0);
        p.label("round");
        p.addi(R5, 1);
        p.st(R6, 0, R5, 4);
        p.label("echo");
        p.ld(R1, R6, 4, 4);
        p.cmp(R1, R5);
        p.jl("echo");
        p.cmpi(R5, kRounds);
        p.jl("round");
        p.halt();
        p.finalize();
        sys.kernel(0).loadAndReady(
            *ping, std::make_shared<Program>(std::move(p)));
    }
    {
        Program p("pong");
        p.movi(R6, pflag1);
        p.movi(R5, 0);
        p.label("round");
        p.addi(R5, 1);
        p.label("wait");
        p.ld(R1, R6, 0, 4);
        p.cmp(R1, R5);
        p.jl("wait");
        p.st(R6, 4, R5, 4);
        p.cmpi(R5, kRounds);
        p.jl("round");
        p.halt();
        p.finalize();
        sys.kernel(1).loadAndReady(
            *pong, std::make_shared<Program>(std::move(p)));
    }

    // ---- job 2: bulk transfers (also one process per node) ----
    Process *src = sys.kernel(0).createProcess("bulk-src");
    Process *sink = sys.kernel(1).createProcess("bulk-sink");
    constexpr int kBlocks = 8;
    Addr bbuf = src->allocate(1);
    Addr bdst = sink->allocate(static_cast<std::size_t>(kBlocks));
    // One source page mapped to each destination page in turn would
    // need remapping; instead map the source page to the first dest
    // page and rotate the payload -- simpler, and what we verify is
    // the count and integrity of transfers under timesharing.
    sys.kernel(0).mapDirect(*src, bbuf, 1, sys.kernel(1), *sink, bdst,
                            UpdateMode::DELIBERATE);
    Addr cmd = sys.kernel(0).mapCommandPages(*src, bbuf, 1);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(bbuf);

    {
        Program p("bulk-src");
        p.movi(R6, 0);      // block number
        p.label("block");
        p.addi(R6, 1);
        // Payload: 128 words of (block << 16) + j.
        p.movi(R2, bbuf);
        p.mov(R0, R6);
        p.shli(R0, 16);
        p.movi(R1, 0);
        p.label("fill");
        p.st(R2, 0, R0, 4);
        p.addi(R2, 4);
        p.addi(R0, 1);
        p.addi(R1, 1);
        p.cmpi(R1, 128);
        p.jl("fill");
        // Deliberate send of the block; the CMPXCHG claim makes this
        // safe even though the quantum may expire anywhere.
        p.movi(R3, bbuf);
        p.movi(R1, 128 * 4);
        msg::emitDeliberateSendSingle(p, cmd_delta, "s", "multi");
        p.label("wait");
        msg::emitDeliberateCheck(p);
        p.jnz("wait");
        p.cmpi(R6, kBlocks);
        p.jl("block");
        p.halt();
        p.label("multi");
        p.halt();
        p.finalize();
        sys.kernel(0).loadAndReady(
            *src, std::make_shared<Program>(std::move(p)));
    }
    {
        // The sink waits for the final block's last word.
        Program p("bulk-sink");
        p.movi(R1, bdst);
        std::uint64_t last =
            (static_cast<std::uint64_t>(kBlocks) << 16) + 127;
        p.label("wait");
        p.ld(R2, R1, 127 * 4, 4);
        p.cmpi(R2, static_cast<std::int64_t>(last));
        p.jnz("wait");
        p.halt();
        p.finalize();
        sys.kernel(1).loadAndReady(
            *sink, std::make_shared<Program>(std::move(p)));
    }

    sys.startAll();
    bool done = sys.runUntilAllExited();
    sys.runFor(ONE_MS);

    auto peek = [&](Process &proc, NodeId node, Addr va) {
        Translation t = proc.space().translate(va, false);
        return sys.node(node).mem.readInt(t.paddr, 4);
    };

    bool ok = done;
    // Job 1 finished all rounds.
    ok = ok && peek(*ping, 0, pflag0 + 4) == kRounds;
    // Job 2's final block arrived intact.
    for (int j = 0; j < 128 && ok; ++j) {
        std::uint64_t expect =
            (static_cast<std::uint64_t>(kBlocks) << 16) + j;
        ok = peek(*sink, 1, bdst + 4 * j) == expect;
    }

    std::printf("two jobs timesharing a 2-node machine "
                "(quantum %.0f us)\n",
                static_cast<double>(cfg.kernel.quantum) / ONE_US);
    std::printf("  ping-pong rounds completed : %d\n", kRounds);
    std::printf("  bulk blocks transferred    : %llu\n",
                (unsigned long long)
                    sys.node(0).ni.dma().transfersStarted());
    std::printf("  context switches node0/1   : %llu / %llu\n",
                (unsigned long long)sys.kernel(0).contextSwitches(),
                (unsigned long long)sys.kernel(1).contextSwitches());
    std::printf("  simulated time             : %.2f ms\n",
                static_cast<double>(sys.curTick()) / ONE_MS);

    ok = ok && sys.kernel(0).contextSwitches() >= 4 &&
         sys.kernel(1).contextSwitches() >= 4;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
