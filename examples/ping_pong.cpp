/**
 * @file
 * Ping-pong: round-trip latency between two nodes using the
 * single-buffering primitive in both directions (paper Section 5.2,
 * Figure 5). Demonstrates that after map(), each message costs a
 * handful of user instructions and the wire latency only.
 *
 * Prints per-round round-trip times and the one-way latency estimate,
 * on both the EISA prototype datapath and the next-generation
 * Xpress-direct datapath (Section 5.1: <2 us and <1 us respectively).
 *
 * Run: ./ping_pong
 */

#include <cstdio>

#include "core/system.hh"
#include "msg/single_buffer.hh"

using namespace shrimp;

namespace
{

struct Result
{
    double rttUs;
    bool ok;
};

Result
runPingPong(bool next_gen, int rounds)
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.nextGenDatapath = next_gen;
    ShrimpSystem sys(cfg);

    Process *ping = sys.kernel(0).createProcess("ping");
    Process *pong = sys.kernel(1).createProcess("pong");

    // One flag word each way (bidirectional automatic update).
    Addr flag0 = ping->allocate(1);     // written by ping at offset 0,
    Addr flag1 = pong->allocate(1);     // by pong at offset 4
    sys.kernel(0).mapDirect(*ping, flag0, 1, sys.kernel(1), *pong,
                            flag1, UpdateMode::AUTO_SINGLE);
    sys.kernel(1).mapDirect(*pong, flag1, 1, sys.kernel(0), *ping,
                            flag0, UpdateMode::AUTO_SINGLE);

    // Ping: send round number, wait for the echo.
    Program pa("ping");
    pa.movi(R6, flag0);
    pa.movi(R5, 0);
    pa.label("round");
    pa.addi(R5, 1);
    pa.st(R6, 0, R5, 4);        // ping!
    pa.label("echo");
    pa.ld(R1, R6, 4, 4);        // wait for pong's echo
    pa.cmp(R1, R5);
    pa.jl("echo");
    pa.cmpi(R5, static_cast<std::int64_t>(rounds));
    pa.jl("round");
    pa.halt();
    pa.finalize();
    sys.kernel(0).loadAndReady(ping[0],
                               std::make_shared<Program>(std::move(pa)));

    // Pong: echo every round number back.
    Program pb("pong");
    pb.movi(R6, flag1);
    pb.movi(R5, 0);
    pb.label("round");
    pb.addi(R5, 1);
    pb.label("wait");
    pb.ld(R1, R6, 0, 4);
    pb.cmp(R1, R5);
    pb.jl("wait");
    pb.st(R6, 4, R5, 4);        // pong!
    pb.cmpi(R5, static_cast<std::int64_t>(rounds));
    pb.jl("round");
    pb.halt();
    pb.finalize();
    sys.kernel(1).loadAndReady(pong[0],
                               std::make_shared<Program>(std::move(pb)));

    sys.startAll();
    bool done = sys.runUntilAllExited();
    double total_us = static_cast<double>(sys.curTick()) / ONE_US;
    return Result{total_us / rounds, done};
}

} // namespace

int
main()
{
    constexpr int kRounds = 50;
    Result proto = runPingPong(false, kRounds);
    Result nextgen = runPingPong(true, kRounds);

    std::printf("single-buffered ping-pong, %d rounds\n", kRounds);
    std::printf("  %-28s rtt %7.3f us   one-way ~%.3f us\n",
                "EISA prototype datapath:", proto.rttUs,
                proto.rttUs / 2);
    std::printf("  %-28s rtt %7.3f us   one-way ~%.3f us\n",
                "next-gen (Xpress) datapath:", nextgen.rttUs,
                nextgen.rttUs / 2);
    std::printf("paper: <2 us prototype, <1 us next-generation\n");

    bool ok = proto.ok && nextgen.ok && proto.rttUs / 2 < 2.0 &&
              nextgen.rttUs / 2 < 1.0 &&
              nextgen.rttUs < proto.rttUs;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
