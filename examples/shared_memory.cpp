/**
 * @file
 * PRAM-style shared memory (paper Section 4.1): two processes on
 * different nodes create complementary automatic-update mappings over
 * a "shared" page, so each one's ordinary stores eagerly propagate to
 * the other's copy. There is no global consistency hardware; the
 * application partitions writes (one writer per word) and uses flag
 * words for ordering, exactly as the paper prescribes for software
 * consistency schemes over the in-order network.
 *
 * Process A fills the even words, process B the odd words; each then
 * reads the words the other wrote and checks a sum.
 *
 * Run: ./shared_memory
 */

#include <cstdio>

#include "core/system.hh"

using namespace shrimp;

namespace
{
constexpr unsigned kWords = 32;     // shared array length
} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("A");
    Process *b = sys.kernel(1).createProcess("B");

    // The shared page, replicated on both nodes, cross-mapped with
    // single-write automatic update in both directions.
    Addr shared_a = a->allocate(1);
    Addr shared_b = b->allocate(1);
    sys.kernel(0).mapDirect(*a, shared_a, 1, sys.kernel(1), *b,
                            shared_b, UpdateMode::AUTO_SINGLE);
    sys.kernel(1).mapDirect(*b, shared_b, 1, sys.kernel(0), *a,
                            shared_a, UpdateMode::AUTO_SINGLE);

    // Layout: words 0..kWords-1 = data; word kWords = A's done flag;
    // word kWords+1 = B's done flag; +2/+3 = result sums.
    Addr flag_a_off = 4 * kWords;
    Addr flag_b_off = 4 * kWords + 4;
    Addr sum_a_off = 4 * kWords + 8;
    Addr sum_b_off = 4 * kWords + 12;

    auto make_writer = [&](Addr base, bool even, Addr my_flag,
                           Addr peer_flag, Addr my_sum) {
        Program p(even ? "A" : "B");
        p.movi(R1, base);
        // Phase 1: write my half of the shared array. Each store is
        // eagerly propagated to the peer's copy.
        for (unsigned j = even ? 0 : 1; j < kWords; j += 2)
            p.sti(R1, 4 * j, 1000 + j, 4);
        // Publish "done" and wait for the peer's flag.
        p.movi(R2, base + my_flag);
        p.sti(R2, 0, 1, 4);
        p.movi(R2, base + peer_flag);
        p.label("peer");
        p.ld(R3, R2, 0, 4);
        p.cmpi(R3, 1);
        p.jnz("peer");
        // Phase 2: sum the words the peer wrote (they are in OUR
        // local copy now -- reads are always local under PRAM).
        p.movi(R4, 0);
        for (unsigned j = even ? 1 : 0; j < kWords; j += 2) {
            p.ld(R3, R1, 4 * j, 4);
            p.add(R4, R3);
        }
        p.movi(R2, base + my_sum);
        p.st(R2, 0, R4, 4);
        p.halt();
        p.finalize();
        return p;
    };

    Program pa = make_writer(shared_a, true, flag_a_off, flag_b_off,
                             sum_a_off);
    Program pb = make_writer(shared_b, false, flag_b_off, flag_a_off,
                             sum_b_off);
    sys.kernel(0).loadAndReady(*a,
                               std::make_shared<Program>(std::move(pa)));
    sys.kernel(1).loadAndReady(*b,
                               std::make_shared<Program>(std::move(pb)));

    sys.startAll();
    bool done = sys.runUntilAllExited();
    sys.runFor(ONE_MS);

    std::uint64_t expect_a = 0, expect_b = 0;   // peer-written sums
    for (unsigned j = 1; j < kWords; j += 2)
        expect_a += 1000 + j;   // A sums B's odd words
    for (unsigned j = 0; j < kWords; j += 2)
        expect_b += 1000 + j;   // B sums A's even words

    auto peek = [&](Process &proc, NodeId node, Addr va) {
        Translation t = proc.space().translate(va, false);
        return sys.node(node).mem.readInt(t.paddr, 4);
    };
    std::uint64_t sum_a = peek(*a, 0, shared_a + sum_a_off);
    std::uint64_t sum_b = peek(*b, 1, shared_b + sum_b_off);

    std::printf("PRAM-style shared memory over complementary "
                "mappings\n");
    std::printf("  A's sum of B's words: %llu (expect %llu)\n",
                (unsigned long long)sum_a,
                (unsigned long long)expect_a);
    std::printf("  B's sum of A's words: %llu (expect %llu)\n",
                (unsigned long long)sum_b,
                (unsigned long long)expect_b);

    bool ok = done && sum_a == expect_a && sum_b == expect_b;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
