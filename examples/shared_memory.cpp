/**
 * @file
 * Shared memory over the DSM service: two processes on different
 * nodes attach the same demand-paged shared window and communicate
 * through ordinary loads and stores -- no explicit mappings, no
 * message sends, no write-partitioning discipline. Every page fault
 * becomes a VMMC transaction (DSM_GET to the page's home, a
 * deliberate-DMA page transfer, map-and-resume), and the directory's
 * invalidations keep the copies coherent where the old PRAM scheme
 * relied on the application never writing the same word twice.
 *
 * Process A fills the even words of a shared array, process B the odd
 * words; each publishes a flag, spins on the other's flag (the spin
 * read re-faults whenever the writer's upgrade invalidates the local
 * copy), then sums the words the peer wrote. Because all of it lives
 * in one shared page, the run exercises the whole protocol: read
 * faults, exclusive upgrades, sharer shootdowns and owner recalls.
 *
 * Run: ./shared_memory
 */

#include <cstdio>

#include "core/system.hh"
#include "os/dsm.hh"

using namespace shrimp;

namespace
{

constexpr unsigned kWords = 32;     // shared array length

/** Read one word of a DSM page from any node holding a copy. */
std::uint32_t
peekDsm(ShrimpSystem &sys, std::uint32_t page, unsigned byte_off)
{
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        Dsm &d = *sys.kernel(id).dsm();
        if (d.localState(page) != DsmPageState::INVALID) {
            return static_cast<std::uint32_t>(sys.node(id).mem.readInt(
                pageBase(d.localFrame(page)) + byte_off, 4));
        }
    }
    return 0xdead'dead;
}

} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    cfg.dsm.enabled = true;
    cfg.dsm.numPages = 4;
    ShrimpSystem sys(cfg);

    Process *a = sys.kernel(0).createProcess("A");
    Process *b = sys.kernel(1).createProcess("B");
    sys.kernel(0).dsm()->attach(*a);
    sys.kernel(1).dsm()->attach(*b);

    // Both processes see the shared window at the same address; page
    // 0 of it holds the whole workload. Layout: words 0..kWords-1 =
    // data; word kWords / kWords+1 = A's / B's done flag; +2 / +3 =
    // the result sums.
    const Addr base = cfg.dsm.baseVaddr;
    const Addr flag_a_off = 4 * kWords;
    const Addr flag_b_off = 4 * kWords + 4;
    const Addr sum_a_off = 4 * kWords + 8;
    const Addr sum_b_off = 4 * kWords + 12;

    auto make_writer = [&](bool even, Addr my_flag, Addr peer_flag,
                           Addr my_sum) {
        Program p(even ? "A" : "B");
        p.movi(R1, base);
        // Phase 1: write my half of the shared array. The first store
        // write-faults the page in; later stores hit until the peer
        // steals it back.
        for (unsigned j = even ? 0 : 1; j < kWords; j += 2)
            p.sti(R1, 4 * j, 1000 + j, 4);
        // Publish "done" and wait for the peer's flag. The spin read
        // re-faults each time the peer's writes invalidate our copy.
        p.sti(R1, my_flag, 1, 4);
        p.label("peer");
        p.ld(R3, R1, peer_flag, 4);
        p.cmpi(R3, 1);
        p.jnz("peer");
        // Phase 2: sum the words the peer wrote. The page arrives
        // with the peer's stores already merged -- the directory kept
        // one coherent copy, no partitioning rules needed.
        p.movi(R4, 0);
        for (unsigned j = even ? 1 : 0; j < kWords; j += 2) {
            p.ld(R3, R1, 4 * j, 4);
            p.add(R4, R3);
        }
        p.st(R1, my_sum, R4, 4);
        p.halt();
        p.finalize();
        return p;
    };

    Program pa = make_writer(true, flag_a_off, flag_b_off, sum_a_off);
    Program pb = make_writer(false, flag_b_off, flag_a_off, sum_b_off);
    sys.kernel(0).loadAndReady(*a,
                               std::make_shared<Program>(std::move(pa)));
    sys.kernel(1).loadAndReady(*b,
                               std::make_shared<Program>(std::move(pb)));

    sys.startAll();
    bool done = sys.runUntilAllExited(2 * ONE_SEC);
    sys.runFor(ONE_MS);

    std::uint64_t expect_a = 0, expect_b = 0;   // peer-written sums
    for (unsigned j = 1; j < kWords; j += 2)
        expect_a += 1000 + j;   // A sums B's odd words
    for (unsigned j = 0; j < kWords; j += 2)
        expect_b += 1000 + j;   // B sums A's even words

    std::uint32_t sum_a = peekDsm(sys, 0, sum_a_off);
    std::uint32_t sum_b = peekDsm(sys, 0, sum_b_off);
    std::uint64_t faults = sys.kernel(0).dsm()->faults() +
                           sys.kernel(1).dsm()->faults();

    std::printf("coherent shared memory over the DSM window\n");
    std::printf("  A's sum of B's words: %llu (expect %llu)\n",
                (unsigned long long)sum_a,
                (unsigned long long)expect_a);
    std::printf("  B's sum of A's words: %llu (expect %llu)\n",
                (unsigned long long)sum_b,
                (unsigned long long)expect_b);
    std::printf("  page faults serviced over VMMC: %llu\n",
                (unsigned long long)faults);

    bool ok = done && sum_a == expect_a && sum_b == expect_b &&
              faults > 0;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
