/**
 * @file
 * All-to-all personalized exchange on a 4x4 (16-node) machine -- the
 * configuration the paper quotes its latency estimate for.
 *
 * Every node owns one page of data for every other node, mapped with
 * deliberate update, and pushes all 15 pages through the user-level
 * block-transfer macro (one CMPXCHG claim per page, transfers
 * serialized by the node's single DMA engine). Every node also
 * receives 15 pages. The example verifies all 240 page transfers
 * byte-exactly and reports aggregate bandwidth.
 *
 * Run: ./all_to_all
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"
#include "msg/deliberate.hh"

using namespace shrimp;

namespace
{
constexpr unsigned kSide = 4;
constexpr unsigned kNodes = kSide * kSide;
} // namespace

int
main()
{
    SystemConfig cfg = SystemConfig::paper16();
    ShrimpSystem sys(cfg);

    struct Rank
    {
        Process *proc;
        Addr sendBase;  //!< kNodes-1 outgoing pages, peer-ordered
        Addr recvBase;  //!< kNodes-1 incoming pages, sender-ordered
        Addr cmdBase;
    };
    std::vector<Rank> ranks(kNodes);

    for (unsigned i = 0; i < kNodes; ++i) {
        Process *p = sys.kernel(i).createProcess("rank" +
                                                 std::to_string(i));
        ranks[i].proc = p;
        ranks[i].sendBase = p->allocate(kNodes - 1);
        ranks[i].recvBase = p->allocate(kNodes - 1);
    }

    // Mappings: my page #k goes to peer (skipping myself); it lands
    // in the peer's receive slot indexed by MY id.
    auto slot_for = [](unsigned me, unsigned peer) {
        return peer < me ? peer : peer - 1;     // outgoing slot
    };
    for (unsigned i = 0; i < kNodes; ++i) {
        for (unsigned j = 0; j < kNodes; ++j) {
            if (i == j)
                continue;
            Addr src =
                ranks[i].sendBase + slot_for(i, j) * PAGE_SIZE;
            Addr dst =
                ranks[j].recvBase + slot_for(j, i) * PAGE_SIZE;
            std::uint64_t e = sys.kernel(i).mapDirect(
                *ranks[i].proc, src, 1, sys.kernel(j), *ranks[j].proc,
                dst, UpdateMode::DELIBERATE);
            if (e != err::OK) {
                std::printf("map %u->%u failed: %llu\n", i, j,
                            (unsigned long long)e);
                return 1;
            }
        }
    }
    for (unsigned i = 0; i < kNodes; ++i) {
        ranks[i].cmdBase = sys.kernel(i).mapCommandPages(
            *ranks[i].proc, ranks[i].sendBase, kNodes - 1);
    }

    // Fill: page for peer j from node i carries (i << 20)|(j << 12)|w.
    for (unsigned i = 0; i < kNodes; ++i) {
        for (unsigned j = 0; j < kNodes; ++j) {
            if (i == j)
                continue;
            Addr base =
                ranks[i].sendBase + slot_for(i, j) * PAGE_SIZE;
            for (Addr off = 0; off < PAGE_SIZE; off += 4) {
                Translation t = ranks[i].proc->space().translate(
                    base + off, true);
                sys.node(i).mem.writeInt(
                    t.paddr,
                    (static_cast<std::uint64_t>(i) << 20) |
                        (static_cast<std::uint64_t>(j) << 12) |
                        (off / 4),
                    4);
            }
        }
    }

    // Program per rank: deliberate-send every outgoing page in turn.
    for (unsigned i = 0; i < kNodes; ++i) {
        const Rank &r = ranks[i];
        std::int64_t delta = static_cast<std::int64_t>(r.cmdBase) -
                             static_cast<std::int64_t>(r.sendBase);
        Program p("rank" + std::to_string(i));
        for (unsigned s = 0; s < kNodes - 1; ++s) {
            std::string tag = std::to_string(s);
            p.movi(R3, r.sendBase + s * PAGE_SIZE);
            p.movi(R1, PAGE_SIZE);
            msg::emitDeliberateSendSingle(p, delta, "snd" + tag,
                                          "multi" + tag);
            p.label("multi" + tag);     // unreachable: exactly a page
            p.label("wait" + tag);
            msg::emitDeliberateCheck(p);
            p.jnz("wait" + tag);
        }
        p.halt();
        p.finalize();
        sys.kernel(i).loadAndReady(
            *r.proc, std::make_shared<Program>(std::move(p)));
    }

    Tick first = MAX_TICK;
    Tick last = 0;
    std::uint64_t bytes = 0;
    for (unsigned i = 0; i < kNodes; ++i) {
        sys.node(i).ni.onDelivered =
            [&](const NetPacket &pkt, Tick when) {
                if (pkt.injectedAt < first)
                    first = pkt.injectedAt;
                if (when > last)
                    last = when;
                bytes += pkt.payload.size();
            };
    }

    sys.startAll();
    bool done = sys.runUntilAllExited(30 * ONE_SEC, 2'000'000'000);
    sys.runFor(50 * ONE_MS);

    // Verify all 240 received pages.
    bool ok = done;
    for (unsigned j = 0; j < kNodes && ok; ++j) {
        for (unsigned i = 0; i < kNodes && ok; ++i) {
            if (i == j)
                continue;
            Addr base =
                ranks[j].recvBase + slot_for(j, i) * PAGE_SIZE;
            for (Addr off = 0; off < PAGE_SIZE; off += 4) {
                Translation t = ranks[j].proc->space().translate(
                    base + off, false);
                std::uint64_t got =
                    sys.node(j).mem.readInt(t.paddr, 4);
                std::uint64_t expect =
                    (static_cast<std::uint64_t>(i) << 20) |
                    (static_cast<std::uint64_t>(j) << 12) | (off / 4);
                if (got != expect) {
                    std::printf("mismatch %u->%u off %llu: got %llx "
                                "expect %llx\n",
                                i, j, (unsigned long long)off,
                                (unsigned long long)got,
                                (unsigned long long)expect);
                    ok = false;
                    break;
                }
            }
        }
    }

    double secs = static_cast<double>(last - first) / ONE_SEC;
    std::printf("all-to-all on %u nodes: %u page transfers\n", kNodes,
                kNodes * (kNodes - 1));
    std::printf("  payload moved        : %.1f KB\n", bytes / 1024.0);
    std::printf("  exchange time        : %.2f ms (simulated)\n",
                secs * 1e3);
    std::printf("  aggregate bandwidth  : %.1f MB/s\n",
                bytes / secs / 1e6);
    std::printf("  verified byte-exact  : %s\n", ok ? "yes" : "NO");
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
