/**
 * @file
 * Ring exchange: the "typical multicomputer program" of the paper's
 * Figure 1 -- map() calls outside the loop, then an iterate/exchange
 * loop whose communication is ordinary stores.
 *
 * Four nodes hold an 8-word array each and rotate the arrays around
 * the ring once per iteration using single-buffered transfers. After
 * four iterations every array is back home; the example verifies
 * byte-exact delivery through four hops of mappings.
 *
 * Synchronization uses one flag page per ring edge, mapped
 * bidirectionally between the edge's two endpoints with one writer
 * per word: [0] = data flag (upstream writes), [4] = consumption ack
 * (downstream writes).
 *
 * Run: ./stencil
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"

using namespace shrimp;

namespace
{
constexpr unsigned kNodes = 4;
constexpr unsigned kWords = 8;
constexpr unsigned kIters = 4;  // full rotation
} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.meshWidth = kNodes;
    cfg.meshHeight = 1;
    ShrimpSystem sys(cfg);

    struct NodeState
    {
        Process *proc;
        Addr cur, sbuf, rbuf;
        Addr rightEdge;     //!< flag page shared with right neighbour
        Addr leftEdge;      //!< flag page shared with left neighbour
    };
    std::vector<NodeState> nodes(kNodes);

    for (unsigned i = 0; i < kNodes; ++i) {
        Process *p = sys.kernel(i).createProcess("rank" +
                                                 std::to_string(i));
        nodes[i] = {p,
                    p->allocate(1),
                    p->allocate(1),
                    p->allocate(1),
                    p->allocate(1),
                    p->allocate(1)};
    }

    // Mappings, once, outside the loop (Figure 1). Per ring edge
    // i -> right: the data buffer one way, and the edge's flag page
    // both ways (i's rightEdge pairs with right's leftEdge).
    for (unsigned i = 0; i < kNodes; ++i) {
        unsigned right = (i + 1) % kNodes;
        sys.kernel(i).mapDirect(*nodes[i].proc, nodes[i].sbuf, 1,
                                sys.kernel(right), *nodes[right].proc,
                                nodes[right].rbuf,
                                UpdateMode::AUTO_BLOCK);
        sys.kernel(i).mapDirect(*nodes[i].proc, nodes[i].rightEdge, 1,
                                sys.kernel(right), *nodes[right].proc,
                                nodes[right].leftEdge,
                                UpdateMode::AUTO_SINGLE);
        sys.kernel(right).mapDirect(*nodes[right].proc,
                                    nodes[right].leftEdge, 1,
                                    sys.kernel(i), *nodes[i].proc,
                                    nodes[i].rightEdge,
                                    UpdateMode::AUTO_SINGLE);
    }

    // Seed each rank's array.
    for (unsigned i = 0; i < kNodes; ++i) {
        for (unsigned j = 0; j < kWords; ++j) {
            Translation t =
                nodes[i].proc->space().translate(nodes[i].cur + 4 * j,
                                                 true);
            sys.node(i).mem.writeInt(t.paddr, i * 100 + j, 4);
        }
    }

    for (unsigned i = 0; i < kNodes; ++i) {
        const NodeState &ns = nodes[i];
        Program p("rank" + std::to_string(i));

        for (unsigned it = 0; it < kIters; ++it) {
            std::string tag = std::to_string(it);
            // Wait for the right neighbour's ack of our previous
            // message (rightEdge[4], written by the right neighbour).
            p.movi(R1, ns.rightEdge + 4);
            p.label("ackwait" + tag);
            p.ld(R2, R1, 0, 4);
            p.cmpi(R2, it);
            p.jl("ackwait" + tag);
            // Copy cur -> send buffer (the stores are the message).
            for (unsigned j = 0; j < kWords; ++j) {
                p.movi(R1, ns.cur + 4 * j);
                p.ld(R2, R1, 0, 4);
                p.movi(R1, ns.sbuf + 4 * j);
                p.st(R1, 0, R2, 4);
            }
            // Publish to the right: rightEdge[0] (we are its writer).
            p.movi(R1, ns.rightEdge);
            p.sti(R1, 0, it + 1, 4);
            // Wait for the left neighbour's data: leftEdge[0].
            p.movi(R1, ns.leftEdge);
            p.label("datawait" + tag);
            p.ld(R2, R1, 0, 4);
            p.cmpi(R2, it + 1);
            p.jl("datawait" + tag);
            // Adopt the arrived array.
            for (unsigned j = 0; j < kWords; ++j) {
                p.movi(R1, ns.rbuf + 4 * j);
                p.ld(R2, R1, 0, 4);
                p.movi(R1, ns.cur + 4 * j);
                p.st(R1, 0, R2, 4);
            }
            // Ack consumption to the left: leftEdge[4].
            p.movi(R1, ns.leftEdge + 4);
            p.sti(R1, 0, it + 1, 4);
        }
        p.halt();
        p.finalize();
        sys.kernel(i).loadAndReady(
            *ns.proc, std::make_shared<Program>(std::move(p)));
    }

    sys.startAll();
    bool done = sys.runUntilAllExited();
    sys.runFor(ONE_MS);

    bool ok = done;
    for (unsigned i = 0; i < kNodes && ok; ++i) {
        for (unsigned j = 0; j < kWords; ++j) {
            Translation t = nodes[i].proc->space().translate(
                nodes[i].cur + 4 * j, false);
            std::uint64_t v = sys.node(i).mem.readInt(t.paddr, 4);
            if (v != i * 100 + j) {
                std::printf("rank %u word %u: got %llu expected %u\n",
                            i, j, (unsigned long long)v, i * 100 + j);
                ok = false;
            }
        }
    }

    std::uint64_t packets = 0;
    for (unsigned i = 0; i < kNodes; ++i)
        packets += sys.node(i).ni.packetsSent();

    std::printf("ring exchange on %u nodes, %u iterations\n", kNodes,
                kIters);
    std::printf("  arrays rotated full circle and verified: %s\n",
                ok ? "yes" : "NO");
    std::printf("  total packets on the backplane: %llu\n",
                (unsigned long long)packets);
    std::printf("  simulated time: %.2f us\n",
                static_cast<double>(sys.curTick()) / ONE_US);
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
