/**
 * @file
 * Migratory counter over the DSM window: four nodes take strict turns
 * incrementing one shared counter, ordered by a ticket word on the
 * same page. Each turn the page write-migrates to the next node --
 * the previous owner is recalled through the home, its writeback
 * carries the counter, and the new owner gets an exclusive grant --
 * while the waiting nodes' ticket spins keep pulling read-shared
 * copies that the next increment invalidates again.
 *
 * This is the protocol's worst-case traffic pattern (every access a
 * coherence miss), and also its sharpest correctness probe: the final
 * counter equals nodes x rounds only if every writeback survived
 * every migration.
 *
 * Run: ./dsm_migratory
 */

#include <cstdio>

#include "core/system.hh"
#include "os/dsm.hh"

using namespace shrimp;

namespace
{

constexpr unsigned kRounds = 3;     // full ring laps

/** Read one word of a DSM page from any node holding a copy. */
std::uint32_t
peekDsm(ShrimpSystem &sys, std::uint32_t page, unsigned byte_off)
{
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        Dsm &d = *sys.kernel(id).dsm();
        if (d.localState(page) != DsmPageState::INVALID) {
            return static_cast<std::uint32_t>(sys.node(id).mem.readInt(
                pageBase(d.localFrame(page)) + byte_off, 4));
        }
    }
    return 0xdead'dead;
}

} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 2;
    cfg.dsm.enabled = true;
    cfg.dsm.numPages = 4;
    const unsigned n = cfg.numNodes();
    ShrimpSystem sys(cfg);

    // Page 0, word 0: the ticket (whose turn it is, monotonically
    // increasing). Word 1: the shared counter.
    const Addr base = cfg.dsm.baseVaddr;
    const Addr ticket_off = 0;
    const Addr counter_off = 4;

    for (NodeId id = 0; id < n; ++id) {
        Process *p = sys.kernel(id).createProcess(
            "inc" + std::to_string(id));
        sys.kernel(id).dsm()->attach(*p);

        Program prog("inc" + std::to_string(id));
        prog.movi(R1, base);
        for (unsigned k = 0; k < kRounds; ++k) {
            const unsigned my_turn = k * n + id;
            // Spin until the ticket reaches my turn. The spin hits a
            // local read-shared copy until the current holder's
            // increment invalidates it; the re-fault fetches the new
            // ticket.
            prog.label("wait" + std::to_string(k));
            prog.ld(R2, R1, ticket_off, 4);
            prog.cmpi(R2, my_turn);
            prog.jnz("wait" + std::to_string(k));
            // My turn: bump the counter, pass the ticket on. The
            // first store write-faults the page here exclusively.
            prog.ld(R3, R1, counter_off, 4);
            prog.addi(R3, 1);
            prog.st(R1, counter_off, R3, 4);
            prog.sti(R1, ticket_off, my_turn + 1, 4);
        }
        prog.halt();
        prog.finalize();
        sys.kernel(id).loadAndReady(
            *p, std::make_shared<Program>(std::move(prog)));
    }

    sys.startAll();
    bool done = sys.runUntilAllExited(5 * ONE_SEC);
    sys.runFor(ONE_MS);

    const std::uint32_t expect = n * kRounds;
    std::uint32_t counter = peekDsm(sys, 0, counter_off);
    std::uint32_t ticket = peekDsm(sys, 0, ticket_off);

    std::uint64_t faults = 0, fetches = 0, invals = 0;
    for (NodeId id = 0; id < n; ++id) {
        faults += sys.kernel(id).dsm()->faults();
        fetches += sys.kernel(id).dsm()->fetches();
        invals += sys.kernel(id).dsm()->invalidations();
    }

    std::printf("migratory counter: %u nodes x %u laps over DSM\n", n,
                kRounds);
    std::printf("  counter: %u (expect %u), ticket: %u\n", counter,
                expect, ticket);
    std::printf("  faults: %llu  remote fetches: %llu  "
                "invalidations: %llu\n",
                (unsigned long long)faults,
                (unsigned long long)fetches,
                (unsigned long long)invals);
    bool ok = done && counter == expect && ticket == expect &&
              fetches > 0;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
