/**
 * @file
 * Quickstart: the smallest complete SHRIMP program.
 *
 * Builds a two-node machine, maps a page from a sender process to a
 * receiver process (the paper's map() separation of protection from
 * data movement), then communicates twice:
 *
 *  1. automatic update -- ordinary stores to the mapped page
 *     propagate to the remote memory with no further software;
 *  2. deliberate update -- an explicit user-level block transfer
 *     through the VM-mapped command page (one locked CMPXCHG).
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "core/system.hh"
#include "msg/deliberate.hh"

using namespace shrimp;

int
main()
{
    // A 1x2 mesh with the paper's default hardware parameters.
    SystemConfig cfg;
    cfg.meshWidth = 2;
    cfg.meshHeight = 1;
    ShrimpSystem sys(cfg);

    // One process per node.
    Process *sender = sys.kernel(0).createProcess("sender");
    Process *receiver = sys.kernel(1).createProcess("receiver");

    // User buffers: one page mapped for automatic update, one for
    // deliberate update.
    Addr auto_src = sender->allocate(1);
    Addr auto_dst = receiver->allocate(1);
    Addr blk_src = sender->allocate(1);
    Addr blk_dst = receiver->allocate(1);

    // map(): protection is checked here, once; everything after this
    // happens at user level with zero kernel involvement.
    sys.kernel(0).mapDirect(*sender, auto_src, 1, sys.kernel(1),
                            *receiver, auto_dst,
                            UpdateMode::AUTO_SINGLE);
    sys.kernel(0).mapDirect(*sender, blk_src, 1, sys.kernel(1),
                            *receiver, blk_dst,
                            UpdateMode::DELIBERATE);
    Addr cmd = sys.kernel(0).mapCommandPages(*sender, blk_src, 1);
    std::int64_t cmd_delta = static_cast<std::int64_t>(cmd) -
                             static_cast<std::int64_t>(blk_src);

    // Sender program: a store IS a message; then a 64-word block send.
    Program ps("sender");
    ps.movi(R1, auto_src);
    ps.sti(R1, 0, 42, 4);               // automatic update: done!
    ps.movi(R1, blk_src);
    for (int j = 0; j < 64; ++j)        // fill the block locally
        ps.sti(R1, 4 * j, 1000 + j, 4);
    ps.movi(R3, blk_src);               // deliberate send macro
    ps.movi(R1, 64 * 4);
    msg::emitDeliberateSendSingle(ps, cmd_delta, "send", "multi");
    ps.halt();
    ps.label("multi");
    ps.halt();
    ps.finalize();
    sys.kernel(0).loadAndReady(sender[0],
                               std::make_shared<Program>(std::move(ps)));

    // Receiver: spin until both messages are visible in local memory.
    Program pr("receiver");
    pr.movi(R1, auto_dst);
    pr.label("wait1");
    pr.ld(R2, R1, 0, 4);
    pr.cmpi(R2, 42);
    pr.jnz("wait1");
    pr.movi(R1, blk_dst);
    pr.label("wait2");
    pr.ld(R2, R1, 63 * 4, 4);
    pr.cmpi(R2, 1063);
    pr.jnz("wait2");
    pr.halt();
    pr.finalize();
    sys.kernel(1).loadAndReady(receiver[0],
                               std::make_shared<Program>(std::move(pr)));

    sys.startAll();
    bool done = sys.runUntilAllExited();
    sys.runFor(ONE_MS);

    auto peek = [&](Process &proc, NodeId node, Addr va) {
        Translation t = proc.space().translate(va, false);
        return sys.node(node).mem.readInt(t.paddr, 4);
    };

    std::printf("quickstart on a %ux%u SHRIMP machine\n",
                cfg.meshWidth, cfg.meshHeight);
    std::printf("  automatic update : dst[0]  = %llu (expect 42)\n",
                (unsigned long long)peek(*receiver, 1, auto_dst));
    std::printf("  deliberate update: dst[63] = %llu (expect 1063)\n",
                (unsigned long long)peek(*receiver, 1,
                                         blk_dst + 63 * 4));
    std::printf("  packets sent by node0     = %llu\n",
                (unsigned long long)sys.node(0).ni.packetsSent());
    std::printf("  simulated time            = %.2f us\n",
                static_cast<double>(sys.curTick()) / ONE_US);

    bool ok = done && peek(*receiver, 1, auto_dst) == 42 &&
              peek(*receiver, 1, blk_dst + 63 * 4) == 1063;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
